"""Tests for the online health monitor: detectors, rules, burn, e2e."""

import io
import json

import pytest

from repro.baselines.systems import SystemConfig, build_system
from repro.errors import ConfigurationError
from repro.ftl.config import SsdConfig
from repro.obs import MetricsRegistry, Tracer, WindowedRecorder
from repro.obs.monitor import (
    BurnRateRule,
    ChangePointRule,
    CusumDetector,
    HealthMonitor,
    MonitorConfig,
    PageHinkleyDetector,
    TailBurnSource,
    TtyStatusView,
    default_rules,
    make_detector,
    metric_kind,
    monitor_fingerprint,
    parse_rule,
    prometheus_name,
    prometheus_text,
)
from repro.traces.schema import TraceRecord


class TestDetectors:
    def test_cusum_fires_on_sustained_step(self):
        detector = CusumDetector(k=0.5, h=8.0, warmup=4)
        for _ in range(4):
            assert detector.update(1.0) is None
        # z caps at 8: each elevated window adds 7.5, so the step must
        # be sustained for ceil(8 / 7.5) + 1 = 2 windows.
        assert detector.update(5.0) is None
        alarm = detector.update(5.0)
        assert alarm is not None
        assert alarm.kind == "cusum"
        assert alarm.score > alarm.threshold

    def test_single_spike_never_alarms(self):
        detector = CusumDetector(k=0.5, h=8.0, warmup=4)
        values = [1.0] * 4 + [50.0] + [1.0] * 40
        alarms = [detector.update(v) for v in values]
        assert not any(alarms)

    def test_rearm_gives_one_alarm_per_persistent_step(self):
        detector = CusumDetector(k=0.5, h=8.0, warmup=4)
        alarms = [detector.update(1.0) for _ in range(4)]
        alarms += [detector.update(5.0) for _ in range(30)]
        fired = [a for a in alarms if a is not None]
        # Re-arm recalibrates at the new level: a latched step is one
        # alarm, not one per window.
        assert len(fired) == 1
        assert detector.n_alarms == 1

    def test_page_hinkley_detects_ramp(self):
        detector = PageHinkleyDetector(delta=0.25, lam=12.0, warmup=4)
        for _ in range(4):
            assert detector.update(0.0) is None
        fired = [detector.update(0.5 * i) for i in range(1, 10)]
        assert any(fired)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CusumDetector(h=0.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(k=-1.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(warmup=1)
        with pytest.raises(ConfigurationError):
            PageHinkleyDetector(delta=-0.1)
        with pytest.raises(ConfigurationError):
            make_detector("nope")

    def test_state_is_json_safe(self):
        detector = make_detector("page_hinkley", lam=6.0, warmup=2)
        detector.update(1.0)
        detector.update(2.0)
        json.dumps(detector.state())


class TestRules:
    def test_parse_rule_round_trip(self):
        rule = parse_rule(
            "retry=cusum(sim.read.retry_rounds,rate,k=1,h=6,warmup=4,"
            "empty=skip)"
        )
        assert rule.name == "retry"
        assert rule.detector_kind == "cusum"
        assert rule.signal == "rate"
        assert rule.detector_params == {"k": 1.0, "h": 6.0, "warmup": 4}
        assert isinstance(rule.detector_params["warmup"], int)
        assert rule.empty == "skip"

    @pytest.mark.parametrize(
        "spec",
        [
            "not a rule",
            "x=cusum(sim.a)",  # missing signal
            "x=cusum(sim.a,nope)",  # bad signal
            "x=wavelet(sim.a,sum)",  # bad detector
            "x=cusum(sim.a,sum,empty=maybe)",  # bad empty policy
            "x=cusum(sim.a,sum,h=tall)",  # non-numeric
            "x=cusum(sim.a,sum,oops)",  # malformed param
            "Bad Name=cusum(sim.a,sum)",
        ],
    )
    def test_parse_rule_rejects(self, spec):
        with pytest.raises(ConfigurationError):
            parse_rule(spec)

    def test_value_sums_selector_terms_and_globs(self):
        recorder = WindowedRecorder(window_us=10.0)
        recorder.add("sim.channel.0.gc_us", 1.0, amount=3.0)
        recorder.add("sim.channel.1.gc_us", 2.0, amount=4.0)
        recorder.add("ftl.scrub.refreshed_pages", 3.0, amount=2.0)
        recorder.add("ftl.bbt.retired", 4.0, amount=1.0)
        glob_rule = ChangePointRule(
            "gc", "sim.channel.*.gc_us", "sum", "cusum"
        )
        union_rule = ChangePointRule(
            "decay", "ftl.scrub.refreshed_pages+ftl.bbt.retired", "sum",
            "page_hinkley",
        )
        assert glob_rule.value(recorder, 0) == pytest.approx(7.0)
        assert union_rule.value(recorder, 0) == pytest.approx(3.0)

    def test_rate_signal_normalises_by_window(self):
        recorder = WindowedRecorder(window_us=500.0)
        recorder.add("sim.read.retry_rounds", 0.0, amount=5.0)
        rule = ChangePointRule("r", "sim.read.retry_rounds", "rate", "cusum")
        assert rule.value(recorder, 0) == pytest.approx(5.0 / (500.0 / 1e6))

    def test_empty_skip_policy_feeds_nothing(self):
        recorder = WindowedRecorder(window_us=10.0)
        recorder.add("sim.response_us", 25.0, amount=100.0)  # window 2 only
        rule = ChangePointRule(
            "lat", "sim.response_us", "mean", "cusum", empty="skip"
        )
        assert rule.observe(recorder, 0) is None
        assert rule.observe(recorder, 1) is None
        assert rule._detector.n_observations == 0
        rule.observe(recorder, 2)
        assert rule._detector.n_observations == 1

    def test_default_rules_unique_and_serialisable(self):
        rules = default_rules()
        names = [rule.name for rule in rules]
        assert len(names) == len(set(names))
        for rule in rules:
            json.dumps(rule.to_dict())


class TestBurnRate:
    PAIR = (("p", 2, 4, 2.0),)

    def test_fires_only_when_both_windows_exceed(self):
        rule = BurnRateRule(
            "b", slo_target=0.9, pairs=self.PAIR, min_total=4.0
        )
        for _ in range(4):
            assert rule.update(0.0, 10.0) == []
        # Fast window hot (0.25/0.1 = 2.5x) but slow still diluted.
        assert rule.update(5.0, 10.0) == []
        # Both exceed: fast 5.0x, slow 2.5x.
        (alarm,) = rule.update(5.0, 10.0)
        assert alarm.pair == "p"
        assert alarm.fast_burn > alarm.threshold
        assert alarm.slow_burn > alarm.threshold

    def test_rising_edge_hysteresis(self):
        rule = BurnRateRule(
            "b", slo_target=0.9, pairs=self.PAIR, min_total=4.0
        )
        fired = []
        for bad in [0.0, 0.0, 5.0, 5.0, 5.0, 5.0, 0.0, 0.0, 0.0, 5.0, 5.0]:
            fired.extend(rule.update(bad, 10.0))
        # One alarm for the first sustained burn, one after recovery.
        assert len(fired) == 2

    def test_min_total_gates_noise(self):
        rule = BurnRateRule(
            "b", slo_target=0.9, pairs=self.PAIR, min_total=100.0
        )
        assert all(rule.update(1.0, 1.0) == [] for _ in range(20))

    def test_tail_source_classifies_windows(self):
        recorder = WindowedRecorder(window_us=10.0)
        recorder.sample("sim.response_us", 5.0, 50.0)
        recorder.sample("sim.response_us", 15.0, 500.0)
        source = TailBurnSource(slo_us=100.0)
        assert source.bad_total(recorder, 0) == (0.0, 1.0)
        assert source.bad_total(recorder, 1) == (1.0, 1.0)
        assert source.bad_total(recorder, 7) == (0.0, 0.0)
        with pytest.raises(ConfigurationError):
            TailBurnSource(slo_us=0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurnRateRule("b", slo_target=1.5)
        with pytest.raises(ConfigurationError):
            BurnRateRule("b", pairs=(("p", 4, 2, 1.0),))
        with pytest.raises(ConfigurationError):
            BurnRateRule("b", pairs=(("p", 2, 4, 0.0),))


def synthetic_monitor(**config_kw):
    """A monitor over a hand-fed recorder (no engine)."""
    recorder = WindowedRecorder(window_us=10.0)
    registry = MetricsRegistry()
    monitor = HealthMonitor(
        recorder,
        registry=registry,
        rules=[
            parse_rule("spike=cusum(sim.x,sum,k=0.5,h=8,warmup=4)")
        ],
        config=MonitorConfig(**config_kw),
    ).attach()
    return recorder, registry, monitor


class TestHealthMonitor:
    def test_alerts_on_hand_fed_step(self):
        recorder, registry, monitor = synthetic_monitor()
        for i in range(6):
            recorder.add("sim.x", i * 10.0 + 5.0, amount=1.0)
        for i in range(6, 12):
            recorder.add("sim.x", i * 10.0 + 5.0, amount=50.0)
        recorder.flush()
        assert monitor.windows_closed == 12
        assert monitor.n_alerts >= 1
        alert = monitor.alerts[0]
        assert alert.kind == "change_point"
        assert alert.rule == "spike"
        assert alert.blame is None  # no tracer attached
        snapshot = registry.snapshot()
        assert snapshot["monitor.windows"] == 12.0
        assert snapshot["monitor.alerts.total"] == float(monitor.n_alerts)
        assert snapshot["monitor.last_alert_window"] == float(alert.window)

    def test_tail_burn_alerting_on_plain_sim_series(self):
        recorder = WindowedRecorder(window_us=10.0)
        monitor = HealthMonitor(
            recorder, rules=[], config=MonitorConfig(slo_us=100.0)
        ).attach()
        for i in range(40):
            recorder.sample("sim.response_us", i * 10.0 + 5.0, 50.0)
        for i in range(40, 80):
            recorder.sample("sim.response_us", i * 10.0 + 5.0, 500.0)
        recorder.flush()
        assert any(a.kind == "burn_rate" for a in monitor.alerts)
        assert all(a.rule.startswith("burn.tail.") for a in monitor.alerts)

    def test_duplicate_rule_names_rejected(self):
        recorder = WindowedRecorder()
        rules = [
            parse_rule("x=cusum(sim.a,sum)"),
            parse_rule("x=cusum(sim.b,sum)"),
        ]
        with pytest.raises(ConfigurationError):
            HealthMonitor(recorder, rules=rules)

    def test_max_alerts_caps_retention_not_counting(self):
        recorder, _, monitor = synthetic_monitor(max_alerts=1)
        for i in range(6):
            recorder.add("sim.x", i * 10.0 + 5.0, amount=1.0)
        # A staircase: each 12-window tread gives the re-armed detector
        # room to recalibrate before the next upward step fires it again.
        for i in range(6, 126):
            amount = 50.0 * (1 + (i - 6) // 12)
            recorder.add("sim.x", i * 10.0 + 5.0, amount=amount)
        recorder.flush()
        assert monitor.n_alerts > 1
        assert len(monitor.alerts) == 1
        assert monitor.to_dict()["n_alerts"] == monitor.n_alerts

    def test_tty_status_view(self):
        recorder, _, monitor = synthetic_monitor()
        stream = io.StringIO()
        view = TtyStatusView(stream)
        monitor.add_observer(view)
        for i in range(6):
            recorder.add("sim.x", i * 10.0 + 5.0, amount=1.0)
        for i in range(6, 12):
            recorder.add("sim.x", i * 10.0 + 5.0, amount=50.0)
        recorder.flush()
        view.finish()
        text = stream.getvalue()
        assert "[alert #1]" in text
        assert "window 11" in text
        assert text.endswith("\n")

    def test_jsonl_stream_schema(self, tmp_path):
        recorder, _, monitor = synthetic_monitor()
        for i in range(6):
            recorder.add("sim.x", i * 10.0 + 5.0, amount=1.0)
        for i in range(6, 12):
            recorder.add("sim.x", i * 10.0 + 5.0, amount=50.0)
        recorder.flush()
        path = tmp_path / "alerts.jsonl"
        monitor.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["event"] == "header"
        assert lines[0]["schema"] == "repro.monitor/1"
        assert [line["event"] for line in lines[1:-1]] == ["alert"] * (
            len(lines) - 2
        )
        summary = lines[-1]
        assert summary["event"] == "summary"
        assert summary["n_alerts"] == monitor.n_alerts
        assert summary["fingerprint"] == monitor_fingerprint(
            monitor.to_dict()
        )

    def test_fingerprint_ignores_stamp_and_tracks_content(self):
        recorder, _, monitor = synthetic_monitor()
        recorder.add("sim.x", 5.0)
        recorder.flush()
        body = monitor.to_dict()
        stamped = dict(body)
        stamped["fingerprint"] = monitor_fingerprint(body)
        assert monitor_fingerprint(stamped) == monitor_fingerprint(body)
        mutated = dict(body)
        mutated["n_alerts"] = 99
        assert monitor_fingerprint(mutated) != monitor_fingerprint(body)


def mixed_trace(n=600, period_us=400.0):
    return [
        TraceRecord(i * period_us, (i * 7) % 80, 1 + i % 3, i % 4 == 0)
        for i in range(n)
    ]


def run_des(monitored=True, fault_scale=None, pe=16000.0, n=600):
    from repro.faults import FaultConfig, FaultInjector
    from repro.sim import DesSimulationEngine, ReadRetryConfig, ReadRetryModel

    ssd = SsdConfig(
        n_blocks=64,
        pages_per_block=16,
        gc_free_block_threshold=2,
        initial_pe_cycles=pe,
    )
    config = SystemConfig(
        ssd=ssd, footprint_pages=int(ssd.logical_pages * 0.4), buffer_pages=16
    )
    injector = None
    if fault_scale is not None:
        injector = FaultInjector(FaultConfig(enabled=True).scaled(fault_scale))
    system = build_system("flexlevel", config, fault_injector=injector)
    tracer = Tracer(sample_every=1, keep_slowest=0)
    registry = MetricsRegistry()
    recorder = WindowedRecorder(window_us=500.0)
    monitor = None
    if monitored:
        monitor = HealthMonitor(
            recorder,
            registry=registry,
            tracer=tracer,
            config=MonitorConfig(warmup_windows=4),
        ).attach()
    engine = DesSimulationEngine(
        system,
        warmup_fraction=0.0,
        n_channels=4,
        retry_model=ReadRetryModel(ReadRetryConfig(seed=11)),
        registry=registry,
        tracer=tracer,
        recorder=recorder,
    )
    result = engine.run(mixed_trace(n), "t")
    return result, recorder, monitor


class TestEndToEnd:
    def test_attach_leaves_simulation_byte_identical(self):
        plain, plain_rec, _ = run_des(monitored=False, fault_scale=200.0)
        mon, mon_rec, monitor = run_des(monitored=True, fault_scale=200.0)
        assert monitor.n_alerts > 0  # the monitor did real work
        assert json.dumps(plain.summary(), sort_keys=True) == json.dumps(
            mon.summary(), sort_keys=True
        )
        assert json.dumps(plain_rec.to_dict(), sort_keys=True) == json.dumps(
            mon_rec.to_dict(), sort_keys=True
        )

    def test_artifact_and_fingerprint_deterministic(self):
        dumps = []
        for _ in range(2):
            _, _, monitor = run_des(fault_scale=200.0)
            body = monitor.to_dict()
            dumps.append(
                (json.dumps(body, sort_keys=True), monitor_fingerprint(body))
            )
        assert dumps[0] == dumps[1]

    def test_fault_run_alerts_clean_run_fault_silent(self):
        _, _, faulty = run_des(fault_scale=200.0)
        _, _, clean = run_des(fault_scale=None, pe=0.0)
        fault_rules = {"uncorrectable", "degraded", "retry_rate"}
        assert {a.rule for a in faulty.alerts} & fault_rules
        assert not {a.rule for a in clean.alerts} & fault_rules
        assert clean.n_alerts < faulty.n_alerts

    def test_alert_blame_fractions_sum_to_one(self):
        _, _, monitor = run_des(fault_scale=200.0)
        checked = 0
        for alert in monitor.alerts:
            blame = alert.blame
            assert blame is not None
            if blame["basis"] == "none":
                continue
            assert blame["n_requests"] > 0
            assert sum(blame["blame_fraction"].values()) == pytest.approx(
                1.0, rel=1e-9
            )
            checked += 1
        assert checked > 0

    def test_window_restricted_blame_matches_span_subset(self):
        _, _, monitor = run_des(fault_scale=200.0)
        windowed = [
            a for a in monitor.alerts if a.blame["basis"] == "window"
        ]
        assert windowed
        for alert in windowed:
            assert alert.blame["start_us"] == alert.start_us
            assert alert.blame["end_us"] == alert.end_us


class TestPrometheusExport:
    def test_name_mapping(self):
        assert (
            prometheus_name("sim.read.retry_rounds")
            == "repro_sim_read_retry_rounds"
        )

    def test_exposition_covers_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.counter("sim.arrivals").inc(3)
        registry.gauge("sim.depth").set(2.5)
        hist = registry.histogram("sim.response_us")
        for v in (100.0, 200.0, 400.0):
            hist.observe(v)
        text = prometheus_text(registry)
        assert "# TYPE repro_sim_arrivals counter" in text
        assert "repro_sim_arrivals 3" in text
        assert "# TYPE repro_sim_depth gauge" in text
        assert "repro_sim_depth 2.5" in text
        assert "# TYPE repro_sim_response_us summary" in text
        assert 'repro_sim_response_us{quantile="0.99"}' in text
        assert "repro_sim_response_us_count 3" in text
        assert text.endswith("\n")

    def test_exposition_deterministic_and_sorted(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z.last").inc()
            registry.gauge("a.first").set(1.0)
            return prometheus_text(registry)

        text = build()
        assert text == build()
        assert text.index("repro_a_first") < text.index("repro_z_last")

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_metric_kind(self):
        registry = MetricsRegistry()
        assert metric_kind(registry.counter("a")) == "counter"
        assert metric_kind(registry.gauge("b")) == "gauge"
        assert metric_kind(registry.histogram("c")) == "histogram"


class TestTerminalDegradedAlert:
    """The flush-time degraded verdict: delivered even when the run was
    cut before the final window closed (crashes, truncation)."""

    def test_degraded_run_emits_exactly_one_terminal_alert(self):
        recorder, _, monitor = synthetic_monitor()
        for i in range(5):
            recorder.sample("ftl.degraded.read_only", i * 10.0 + 5.0, 0.0)
        # The drive goes read-only mid-window; the run is cut before
        # another window would have closed.
        recorder.sample("ftl.degraded.read_only", 55.0, 1.0)
        recorder.flush()
        terminal = [a for a in monitor.alerts if a.kind == "degraded"]
        assert len(terminal) == 1
        alert = terminal[0]
        assert alert.rule == "terminal.degraded"
        assert alert.severity == "page"
        assert alert.evidence["series"] == "ftl.degraded.read_only"
        assert alert.evidence["first_degraded_window"] == 5

    def test_flush_is_idempotent(self):
        recorder, _, monitor = synthetic_monitor()
        recorder.sample("sim.degraded.read_only", 5.0, 1.0)
        recorder.flush()
        recorder.flush()
        assert (
            sum(1 for a in monitor.alerts if a.kind == "degraded") == 1
        )

    def test_healthy_run_stays_silent(self):
        recorder, _, monitor = synthetic_monitor()
        for i in range(10):
            recorder.sample("ftl.degraded.read_only", i * 10.0 + 5.0, 0.0)
        recorder.flush()
        assert not [a for a in monitor.alerts if a.kind == "degraded"]

    def test_end_to_end_read_only_device_flags_at_flush(self):
        """An accelerated program-fail recipe exhausts spares and trips
        read-only; the terminal alert must surface it even if the
        change-point rules missed the final partial window."""
        from repro.faults import FaultConfig, FaultInjector
        from repro.sim import DesSimulationEngine

        ssd = SsdConfig(
            n_blocks=64, pages_per_block=16, gc_free_block_threshold=2
        )
        config = SystemConfig(
            ssd=ssd,
            footprint_pages=int(ssd.logical_pages * 0.4),
            buffer_pages=16,
        )
        injector = FaultInjector(
            FaultConfig(
                enabled=True,
                program_fail_base=0.05,
                spare_block_fraction=0.02,
                initial_bad_block_rate=0.0,
                scrub_enabled=False,
            )
        )
        system = build_system("flexlevel", config, fault_injector=injector)
        recorder = WindowedRecorder(window_us=500.0)
        monitor = HealthMonitor(
            recorder, config=MonitorConfig(warmup_windows=4)
        ).attach()
        trace = [
            TraceRecord(i * 200.0, (i * 13) % 100, 1, True) for i in range(600)
        ]
        engine = DesSimulationEngine(
            system, warmup_fraction=0.0, n_channels=4, recorder=recorder
        )
        engine.run(trace, "t")
        recorder.flush()
        assert system.ssd.read_only
        terminal = [a for a in monitor.alerts if a.kind == "degraded"]
        assert len(terminal) == 1


class TestRecoveryRule:
    def test_single_recovery_event_trips_the_stock_rule(self):
        recorder = WindowedRecorder(window_us=10.0)
        monitor = HealthMonitor(
            recorder, rules=default_rules(), config=MonitorConfig()
        ).attach()
        recorder.add("ftl.recovery.events", 105.0)
        recorder.flush()
        assert any(a.rule == "recovery" for a in monitor.alerts)

    def test_crash_free_run_never_trips_recovery(self):
        recorder = WindowedRecorder(window_us=10.0)
        monitor = HealthMonitor(
            recorder, rules=default_rules(), config=MonitorConfig()
        ).attach()
        for i in range(30):
            recorder.add("sim.arrivals", i * 10.0 + 5.0)
        recorder.flush()
        assert not any(a.rule == "recovery" for a in monitor.alerts)
