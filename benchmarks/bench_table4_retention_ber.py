"""Table 4: retention BER under the three NUNMA configurations.

Paper claims: average retention-BER reductions of 2x / 5x / 9x for
NUNMA 1 / 2 / 3 vs the baseline MLC cell, across P/E 2000-6000 and
storage times of 1 day to 1 month.
"""

import numpy as np
from conftest import QUICK, write_table

from repro.analysis.experiments import (
    PAPER_TABLE4_BASELINE,
    TIME_GRID,
    run_table4_retention_ber,
)

_PE_GRID = (2000, 4000, 6000) if QUICK else (2000, 3000, 4000, 5000, 6000)


def test_table4_retention_ber(benchmark, results_dir, bench_case):
    bench_case.configure(pe_grid=list(_PE_GRID))
    results = benchmark.pedantic(
        run_table4_retention_ber, rounds=1, iterations=1,
        kwargs={"pe_grid": _PE_GRID},
    )

    header = "P/E    scheme    " + "  ".join(f"{label:>9s}" for _, label in TIME_GRID)
    lines = [header]
    for pe in _PE_GRID:
        for scheme in ("baseline", "nunma1", "nunma2", "nunma3"):
            row = "  ".join(
                f"{results[scheme][(pe, hours)]:.3e}" for hours, _ in TIME_GRID
            )
            lines.append(f"{pe:5d}  {scheme:9s} {row}")
    # comparison against the paper's baseline rows (only the grid points
    # computed this run — quick mode skips two P/E rows)
    ratios = [
        results["baseline"][key] / paper
        for key, paper in PAPER_TABLE4_BASELINE.items()
        if key in results["baseline"]
    ]
    geomean = float(np.exp(np.mean(np.log(ratios))))
    reductions = {}
    for scheme in ("nunma1", "nunma2", "nunma3"):
        ratio = [
            results["baseline"][key] / results[scheme][key]
            for key in results[scheme]
        ]
        reductions[scheme] = float(np.exp(np.mean(np.log(ratio))))
    lines.append("")
    lines.append(f"baseline-vs-paper geomean ratio: {geomean:.2f} (target ~1)")
    lines.append(
        "avg BER reduction vs baseline: "
        + ", ".join(f"{s}={r:.1f}x" for s, r in reductions.items())
        + "   (paper: nunma1 2x, nunma2 5x, nunma3 9x)"
    )
    write_table(results_dir, "table4_retention_ber", lines)

    bench_case.emit(
        {
            "baseline_vs_paper_geomean": geomean,
            "nunma1_reduction": reductions["nunma1"],
            "nunma2_reduction": reductions["nunma2"],
            "nunma3_reduction": reductions["nunma3"],
        },
        specs={
            f"nunma{i}_reduction": {"direction": "higher"} for i in (1, 2, 3)
        },
        table="table4_retention_ber",
    )

    assert 0.5 < geomean < 2.0
    assert 1.0 < reductions["nunma1"] < reductions["nunma2"] < reductions["nunma3"]


def test_table4_monotone_in_wear_and_time(benchmark, results_dir):
    """Every scheme's BER grows with both P/E count and storage time."""
    results = benchmark.pedantic(
        run_table4_retention_ber, rounds=1, iterations=1,
        kwargs={"pe_grid": (2000, 4000, 6000)},
    )
    for scheme, table in results.items():
        for hours in (24.0, 720.0):
            assert table[(2000, hours)] <= table[(4000, hours)] <= table[(6000, hours)]
        for pe in (2000, 4000, 6000):
            assert table[(pe, 24.0)] <= table[(pe, 720.0)]
