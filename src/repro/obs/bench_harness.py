"""One harness for all ``benchmarks/bench_*.py`` scripts.

The scripts stay ordinary pytest modules (so ``pytest benchmarks/``
keeps working), but ``repro bench run`` executes them one subprocess at
a time with the quick/seed/run-id environment routed through
:mod:`repro.obs.bench`'s env vars, live per-bench progress/ETA lines
fed by a :class:`~repro.obs.metrics.MetricsRegistry`, and schema
validation of every ``BENCH_*.json`` the scripts emit.
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.obs.bench import (
    ALLOC_ENV,
    QUICK_ENV,
    RUN_ID_ENV,
    SEED_ENV,
    BenchResult,
    default_bench_root,
)
from repro.obs.manifest import git_sha
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class BenchScript:
    """One discovered bench module."""

    path: Path
    name: str  # module stem without the bench_ prefix
    title: str  # first docstring line ("" when absent)


def discover_benches(bench_dir: Path | str | None = None) -> list[BenchScript]:
    """All ``bench_*.py`` scripts under the benchmarks directory, sorted."""
    if bench_dir is None:
        bench_dir = default_bench_root() / "benchmarks"
    bench_dir = Path(bench_dir)
    scripts: list[BenchScript] = []
    for path in sorted(bench_dir.glob("bench_*.py")):
        title = ""
        try:
            docstring = ast.get_docstring(ast.parse(path.read_text()))
            if docstring:
                title = docstring.strip().splitlines()[0]
        except SyntaxError:
            title = "(unparseable)"
        scripts.append(
            BenchScript(path=path, name=path.stem[len("bench_"):], title=title)
        )
    return scripts


@dataclass
class BenchRunOutcome:
    """What happened when one script ran under the harness."""

    script: BenchScript
    returncode: int
    duration_s: float
    emitted: list[BenchResult] = field(default_factory=list)
    output_tail: str = ""

    @property
    def ok(self) -> bool:
        return self.returncode == 0


def make_run_id(mode: str) -> str:
    """A ledger run id: short SHA, mode and a second-resolution stamp."""
    return f"{git_sha()[:10]}-{mode}-{int(time.time())}"


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


def run_benches(
    scripts: list[BenchScript],
    *,
    quick: bool = False,
    alloc: bool = False,
    seed: int | None = None,
    run_id: str | None = None,
    root: Path | str | None = None,
    registry: MetricsRegistry | None = None,
    emit: Callable[[str], None] = print,
    pytest_args: tuple[str, ...] = (),
) -> list[BenchRunOutcome]:
    """Execute each script via ``pytest`` in its own subprocess.

    Environment routing (one mechanism for every bench): quick mode via
    :data:`~repro.obs.bench.QUICK_ENV`, the base seed via
    :data:`~repro.obs.bench.SEED_ENV` and a shared ledger run id via
    :data:`~repro.obs.bench.RUN_ID_ENV` and allocation tracing via
    :data:`~repro.obs.bench.ALLOC_ENV` (``alloc=True`` makes each
    bench subprocess run under tracemalloc so its ``wall`` section
    carries ``peak_py_alloc_kb`` — expect a 2-4x slowdown).  The
    registry accumulates
    ``bench.harness.*`` instruments (runs, failures, per-script wall
    time) that drive the live ETA line.
    """
    root = default_bench_root() if root is None else Path(root)
    mode = "quick" if quick else "full"
    run_id = make_run_id(mode) if run_id is None else run_id
    registry = MetricsRegistry() if registry is None else registry
    durations = registry.histogram("bench.harness.duration_s")
    runs = registry.counter("bench.harness.runs")
    failures = registry.counter("bench.harness.failures")
    progress = registry.gauge("bench.harness.progress")

    env = dict(os.environ)
    env[QUICK_ENV] = "1" if quick else ""
    env[ALLOC_ENV] = "1" if alloc else ""
    env[RUN_ID_ENV] = run_id
    if seed is not None:
        env[SEED_ENV] = str(seed)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    emit(
        f"run {run_id}: {len(scripts)} benches, mode={mode}"
        + (f", seed={seed}" if seed is not None else "")
    )
    outcomes: list[BenchRunOutcome] = []
    for index, script in enumerate(scripts, start=1):
        if durations.count:
            eta = _format_eta(durations.mean() * (len(scripts) - index + 1))
            eta_note = f" (ETA {eta})"
        else:
            eta_note = ""
        emit(f"[{index}/{len(scripts)}] {script.name} ...{eta_note}")
        t0 = time.perf_counter()
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(script.path),
                "-q",
                "-p",
                "no:cacheprovider",
                *pytest_args,
            ],
            cwd=root,
            env=env,
            capture_output=True,
            text=True,
        )
        duration = time.perf_counter() - t0
        durations.observe(duration)
        runs.inc()
        progress.set(index / len(scripts))
        emitted = collect_bench_results(root, run_id, bench_prefix=script.name)
        outcome = BenchRunOutcome(
            script=script,
            returncode=completed.returncode,
            duration_s=duration,
            emitted=emitted,
            output_tail="\n".join(
                (completed.stdout + completed.stderr).strip().splitlines()[-15:]
            ),
        )
        outcomes.append(outcome)
        if outcome.ok:
            emit(
                f"[{index}/{len(scripts)}] {script.name} ok "
                f"({duration:.1f}s, {len(emitted)} BENCH record"
                f"{'' if len(emitted) == 1 else 's'})"
            )
        else:
            failures.inc()
            emit(f"[{index}/{len(scripts)}] {script.name} FAILED ({duration:.1f}s)")
            if outcome.output_tail:
                emit(outcome.output_tail)
    return outcomes


def collect_bench_results(
    root: Path | str, run_id: str | None = None, bench_prefix: str | None = None
) -> list[BenchResult]:
    """Schema-validated ``BENCH_*.json`` records under ``root``.

    ``run_id`` restricts to records emitted by one harness run;
    ``bench_prefix`` to one script's cases (a script may emit several
    records, one per test).  Invalid files raise — a bench that emits a
    schema-breaking record is a failure, not background noise.
    """
    root = Path(root)
    results: list[BenchResult] = []
    for path in sorted(root.glob("BENCH_*.json")):
        result = BenchResult.read(path)
        if run_id is not None and result.run_id != run_id:
            continue
        if bench_prefix is not None and not result.name.startswith(bench_prefix):
            continue
        results.append(result)
    return results
