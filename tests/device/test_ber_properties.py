"""Property tests on the BER engine's structural behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.ber import BerAnalyzer
from repro.device.retention import RetentionModel
from repro.device.voltages import VoltagePlan
from repro.device.wear import WearModel


def margin_plan(margin: float, sigma_p: float = 0.04) -> VoltagePlan:
    verifies = (2.30, 2.90, 3.50)
    return VoltagePlan(
        name=f"margin-{margin:.3f}",
        verify_voltages=verifies,
        read_references=tuple(v - margin for v in verifies),
        vpp=0.20,
        sigma_p=sigma_p,
    )


def analyzer_for(margin: float) -> BerAnalyzer:
    return BerAnalyzer(
        margin_plan(margin),
        retention=RetentionModel(kd=2e-4, tail_weight=0.003, tail_scale=0.1),
        wear=WearModel(k_w=0.011, a_w=0.3),
    )


@settings(max_examples=8, deadline=None)
@given(
    margin=st.floats(0.02, 0.12),
    pe=st.floats(2000, 6000),
    t=st.floats(12.0, 720.0),
)
def test_property_ber_in_unit_interval(margin, pe, t):
    ber = analyzer_for(margin).retention_ber(pe, t).total
    assert 0.0 <= ber <= 1.0


@settings(max_examples=6, deadline=None)
@given(pe=st.floats(2000, 6000), t=st.floats(24.0, 720.0))
def test_property_wider_margin_lower_ber(pe, t):
    tight = analyzer_for(0.03).retention_ber(pe, t).total
    wide = analyzer_for(0.10).retention_ber(pe, t).total
    assert wide <= tight


@settings(max_examples=6, deadline=None)
@given(margin=st.floats(0.03, 0.10), pe=st.floats(2000, 6000))
def test_property_ber_monotone_in_time(margin, pe):
    analyzer = analyzer_for(margin)
    values = [analyzer.retention_ber(pe, t).total for t in (24.0, 168.0, 720.0)]
    assert values == sorted(values)


@settings(max_examples=6, deadline=None)
@given(margin=st.floats(0.03, 0.10), t=st.floats(24.0, 720.0))
def test_property_ber_monotone_in_wear(margin, t):
    analyzer = analyzer_for(margin)
    values = [analyzer.retention_ber(pe, t).total for pe in (2000, 4000, 6000)]
    assert values == sorted(values)


def test_breakdown_shares_valid_probabilities():
    breakdown = analyzer_for(0.05).retention_ber(5000, 720)
    assert all(0.0 <= share <= 1.0 for share in breakdown.per_level.values())
    assert sum(breakdown.per_level.values()) == pytest.approx(1.0)
