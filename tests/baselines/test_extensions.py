"""Tests for the extension systems (progressive, SLC cache, refresh)."""

import pytest

from repro.baselines import (
    EXTENSION_SYSTEMS,
    SystemConfig,
    build_extension_system,
    build_system,
)
from repro.core.level_adjust import CellMode
from repro.ftl.config import SsdConfig
from repro.errors import ConfigurationError


@pytest.fixture
def system_config():
    ssd = SsdConfig(
        n_blocks=64, pages_per_block=16, gc_free_block_threshold=2,
        initial_pe_cycles=6000,
    )
    return SystemConfig(
        ssd=ssd,
        footprint_pages=int(ssd.logical_pages * 0.4),
        buffer_pages=8,
        hotness_window=5,
    )


def find_old_page(system, policy, limit=100):
    for lpn in range(limit):
        info = system.ssd.read_info(lpn, 0.0)
        if policy.extra_levels(info.mode, info.pe_cycles, info.age_hours) > 0:
            return lpn
    return None


class TestFactory:
    def test_registry(self):
        assert set(EXTENSION_SYSTEMS) == {
            "ldpc-in-ssd-progressive", "slc-cache", "refresh",
        }

    def test_unknown_rejected(self, system_config):
        with pytest.raises(ConfigurationError):
            build_extension_system("nope", system_config)


class TestProgressive:
    def test_costs_more_than_tracked(self, system_config, shared_policy):
        tracked = build_system("ldpc-in-ssd", system_config, level_adjust=shared_policy)
        progressive = build_extension_system(
            "ldpc-in-ssd-progressive", system_config, level_adjust=shared_policy
        )
        lpn = find_old_page(tracked, shared_policy)
        assert lpn is not None
        assert progressive.serve_read_page(lpn, 0.0) > tracked.serve_read_page(lpn, 0.0)

    def test_equal_on_fresh_pages(self, system_config, shared_policy):
        tracked = build_system("ldpc-in-ssd", system_config, level_adjust=shared_policy)
        progressive = build_extension_system(
            "ldpc-in-ssd-progressive", system_config, level_adjust=shared_policy
        )
        tracked.ssd.host_write(1, CellMode.NORMAL, 0.0)
        progressive.ssd.host_write(1, CellMode.NORMAL, 0.0)
        assert progressive.serve_read_page(1, 1.0) == tracked.serve_read_page(1, 1.0)


class TestSlcCache:
    def test_pool_half_of_flexlevel(self, system_config, shared_policy):
        flex = build_system("flexlevel", system_config, level_adjust=shared_policy)
        slc = build_extension_system("slc-cache", system_config, level_adjust=shared_policy)
        assert slc.access_eval.pool.max_pages == flex.access_eval.pool.max_pages // 2

    def test_promotes_into_slc_mode(self, system_config, shared_policy):
        system = build_extension_system(
            "slc-cache", system_config, level_adjust=shared_policy
        )
        lpn = find_old_page(system, shared_policy)
        assert lpn is not None
        for _ in range(25):
            system.serve_read_page(lpn, 0.0)
        assert system.ssd.mode_of(lpn) is CellMode.SLC
        assert system.ssd.pages_in_mode(CellMode.SLC) == 1

    def test_slc_page_reads_fast(self, system_config, shared_policy):
        system = build_extension_system(
            "slc-cache", system_config, level_adjust=shared_policy
        )
        lpn = find_old_page(system, shared_policy)
        for _ in range(25):
            system.serve_read_page(lpn, 0.0)
        system.take_background_us()
        assert system.serve_read_page(lpn, 0.0) == pytest.approx(
            system.latency.read_latency_us(0)
        )

    def test_write_mode_follows_pool(self, system_config, shared_policy):
        system = build_extension_system(
            "slc-cache", system_config, level_adjust=shared_policy
        )
        assert system.write_mode(3) is CellMode.NORMAL
        system.access_eval.pool.admit(3)
        assert system.write_mode(3) is CellMode.SLC


class TestRefresh:
    def test_refresh_resets_age(self, system_config, shared_policy):
        system = build_extension_system(
            "refresh", system_config, level_adjust=shared_policy
        )
        lpn = find_old_page(system, shared_policy)
        assert lpn is not None
        slow = system.serve_read_page(lpn, 0.0)
        assert system.refreshes == 1
        system.take_background_us()
        fast = system.serve_read_page(lpn, 1.0)
        assert fast < slow
        assert fast == pytest.approx(system.latency.read_latency_us(0))

    def test_refresh_counts_as_maintenance_writes(self, system_config, shared_policy):
        system = build_extension_system(
            "refresh", system_config, level_adjust=shared_policy
        )
        lpn = find_old_page(system, shared_policy)
        system.serve_read_page(lpn, 0.0)
        assert system.ssd.stats.migration_program_pages == 1
        assert system.ssd.stats.host_write_pages == 0

    def test_fresh_pages_not_refreshed(self, system_config, shared_policy):
        system = build_extension_system(
            "refresh", system_config, level_adjust=shared_policy
        )
        system.ssd.host_write(1, CellMode.NORMAL, 0.0)
        baseline_writes = system.ssd.stats.host_write_pages
        system.serve_read_page(1, 1.0)
        assert system.refreshes == 0
        assert system.ssd.stats.host_write_pages == baseline_writes

    def test_threshold_validated(self, system_config, shared_policy):
        with pytest.raises(ConfigurationError):
            build_extension_system(
                "refresh", system_config, refresh_threshold=0,
                level_adjust=shared_policy,
            )
