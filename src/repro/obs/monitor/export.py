"""Standard-format telemetry export: Prometheus text + TTY status.

``prometheus_text`` renders a :class:`MetricsRegistry` snapshot in the
Prometheus text exposition format (version 0.0.4) so the artifact can
be diffed against — or scraped into — any standard toolchain:

* :class:`~repro.obs.metrics.Counter` → ``TYPE counter``
* :class:`~repro.obs.metrics.Gauge` → ``TYPE gauge``
* :class:`~repro.obs.metrics.Histogram` → ``TYPE summary`` with
  ``{quantile="0.5|0.95|0.99|0.999"}`` sample lines plus ``_sum`` /
  ``_count`` (the log-bucket histogram streams quantiles, which maps
  onto a Prometheus summary, not a cumulative-bucket histogram).

Dotted repro names become legal Prometheus names by prefixing
``repro_`` and mapping ``.`` → ``_`` (``sim.read.retry_rounds`` →
``repro_sim_read_retry_rounds``); the original dotted name is kept as
a ``# HELP`` line so the mapping is reversible by eye.  Output is
sorted and contains no timestamps: fixed seed/config ⇒ byte-identical
snapshot.

:class:`TtyStatusView` is the live view for interactive runs — a
single status line redrawn per closed window (carriage return, no
scrollback spam) with a plain line per alert as it fires.
"""

from __future__ import annotations

from typing import Any, TextIO

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Quantiles exported on summary metrics, with their snapshot keys.
SUMMARY_QUANTILES = (
    ("0.5", 50.0),
    ("0.95", 95.0),
    ("0.99", 99.0),
    ("0.999", 99.9),
)


def prometheus_name(dotted: str) -> str:
    """``sim.read.retry_rounds`` → ``repro_sim_read_retry_rounds``."""
    return "repro_" + dotted.replace(".", "_")


def _format_value(value: float) -> str:
    # repr() keeps full float precision (determinism requires the
    # exact same string on every machine); integers render bare.
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry as a Prometheus text-exposition (0.0.4) snapshot."""
    lines: list[str] = []
    for dotted, instrument in registry.instruments():
        name = prometheus_name(dotted)
        lines.append(f"# HELP {name} repro metric {dotted}")
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {name} summary")
            for label, q in SUMMARY_QUANTILES:
                value = instrument.quantile(q)
                lines.append(
                    f'{name}{{quantile="{label}"}} {_format_value(value)}'
                )
            lines.append(f"{name}_sum {_format_value(instrument.sum)}")
            lines.append(f"{name}_count {_format_value(float(instrument.count))}")
        else:  # pragma: no cover - registry enforces the three kinds
            continue
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: Any) -> None:
    with open(path, "w") as handle:
        handle.write(prometheus_text(registry))


def metric_kind(instrument: Counter | Gauge | Histogram) -> str:
    """The instrument's type name for ``repro metrics ls``."""
    if isinstance(instrument, Counter):
        return "counter"
    if isinstance(instrument, Gauge):
        return "gauge"
    return "histogram"


class TtyStatusView:
    """One redrawn status line per closed window, plus alert lines.

    The monitor calls the view as an observer after every window.
    Wall-clock free: everything shown is virtual time, so the view is
    just a projection of the deterministic monitor state.
    """

    def __init__(self, stream: TextIO):
        self.stream = stream
        self._alerts_shown = 0

    def __call__(self, monitor: Any) -> None:
        for alert in monitor.alerts[self._alerts_shown :]:
            self.stream.write("\r\x1b[K")
            self.stream.write(
                f"[alert #{alert.seq}] window {alert.window} "
                f"t={alert.start_us / 1000.0:.1f}ms {alert.kind} "
                f"{alert.rule} severity={alert.severity}\n"
            )
        self._alerts_shown = len(monitor.alerts)
        index, start_us, _ = monitor.last_window
        self.stream.write(
            f"\r\x1b[Kwindow {index} t={start_us / 1000.0:.1f}ms "
            f"alerts={monitor.n_alerts}"
        )
        self.stream.flush()

    def finish(self) -> None:
        """End the status line so later output starts on a fresh row."""
        self.stream.write("\n")
        self.stream.flush()
