"""System-level comparison on a trace (paper §6.2 workflow).

Builds the four storage systems on the same worn SSD, replays one of
the seven synthetic paper workloads against each, and prints the
Fig. 6(a)-style comparison plus the endurance counters of Fig. 7.

Two engines are available: the legacy single-queue model (``queue``)
and the discrete-event multi-channel model (``des``), which adds
read-retry effects, p50/p95/p99 response-time percentiles and
per-channel utilization.

Run:  python examples/ssd_trace_simulation.py [workload] [n_requests]
          [--engine {queue,des}] [--channels N] [--no-retry]
"""

import argparse

from repro.baselines import SystemConfig, build_system, system_names
from repro.core.level_adjust import LevelAdjustPolicy
from repro.ftl import SsdConfig
from repro.sim import DesSimulationEngine, ReadRetryModel, SimulationEngine
from repro.traces import make_workload, workload_names


def main(
    workload_name: str = "fin-2",
    n_requests: int = 30_000,
    engine_name: str = "queue",
    n_channels: int | None = None,
    retries: bool = True,
) -> None:
    if workload_name not in workload_names():
        raise SystemExit(f"unknown workload {workload_name!r}; pick from {workload_names()}")
    if n_channels is None:
        n_channels = 4 if engine_name == "des" else 1

    ssd_config = SsdConfig(n_blocks=256, pages_per_block=64, initial_pe_cycles=6000)
    workload = make_workload(workload_name, ssd_config.logical_pages)
    trace = workload.generate(n_requests, seed=1)
    policy = LevelAdjustPolicy()  # shared BER oracle; evaluations are cached

    print(
        f"workload {workload_name}: {n_requests} requests, "
        f"{workload.footprint_pages} hot pages of {ssd_config.logical_pages} logical "
        f"({ssd_config.logical_capacity_bytes / 2**30:.1f} GiB drive at 6000 P/E), "
        f"{engine_name} engine, {n_channels} channel(s)"
    )
    print()
    header = (
        f"{'system':16s} {'mean resp (us)':>15s} {'read resp':>10s} "
        f"{'extra lvls':>10s} {'WA':>5s} {'erases':>7s} {'promos':>7s}"
    )
    if engine_name == "des":
        header += f" {'p50':>8s} {'p95':>8s} {'p99':>8s} {'util':>6s}"
    print(header)

    baseline_mean = None
    for name in system_names():
        config = SystemConfig(
            ssd=ssd_config,
            footprint_pages=workload.footprint_pages,
            buffer_pages=512,
        )
        system = build_system(name, config, level_adjust=policy)
        if engine_name == "des":
            engine = DesSimulationEngine(
                system,
                warmup_fraction=0.25,
                n_channels=n_channels,
                retry_model=ReadRetryModel() if retries else None,
            )
        else:
            engine = SimulationEngine(
                system, warmup_fraction=0.25, n_channels=n_channels
            )
        result = engine.run(trace, workload_name)
        mean = result.mean_response_us()
        if baseline_mean is None:
            baseline_mean = mean
        line = (
            f"{name:16s} {mean:12.1f} ({mean / baseline_mean:4.2f}x) "
            f"{result.mean_read_response_us():10.1f} "
            f"{result.stats['mean_extra_levels']:10.2f} "
            f"{result.stats['write_amplification']:5.2f} "
            f"{result.stats['erase_blocks']:7.0f} "
            f"{result.stats['promotions']:7.0f}"
        )
        if engine_name == "des":
            percentiles = result.percentiles()
            utilization = result.channel_utilization()
            line += (
                f" {percentiles['p50_response_us']:8.1f}"
                f" {percentiles['p95_response_us']:8.1f}"
                f" {percentiles['p99_response_us']:8.1f}"
                f" {sum(utilization) / len(utilization):6.2f}"
            )
        print(line)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="fin-2")
    parser.add_argument("n_requests", nargs="?", type=int, default=30_000)
    parser.add_argument("--engine", choices=("queue", "des"), default="queue")
    parser.add_argument(
        "--channels", type=int, default=None,
        help="flash channels (default: 1 for queue, 4 for des)",
    )
    parser.add_argument(
        "--no-retry", action="store_true", help="disable the DES read-retry model"
    )
    args = parser.parse_args()
    main(
        workload_name=args.workload,
        n_requests=args.n_requests,
        engine_name=args.engine,
        n_channels=args.channels,
        retries=not args.no_retry,
    )
