"""Generalized ReduceCode: pack bits into pairs of L-level cells.

ReduceCode (paper Table 1) is the L = 3 instance of a general idea: two
L-level cells span L^2 combinations, of which a power-of-two subset can
encode ``floor(log2(L^2))`` bits — recovering density that per-cell Gray
coding would forfeit.  The paper's future-work direction (TLC and
beyond) needs the general construction:

=====  ==============  ==========  ================  ==========
cells  levels per cell  bits/pair  bits/cell         density loss
=====  ==============  ==========  ================  ==========
2      3 (paper)        3          1.5 vs 2 (MLC)    25 %
2      6                5          2.5 vs 3 (TLC)    16.7 %
2      7                5          2.5 vs 3 (TLC)    16.7 %
2      12               7          3.5 vs 4 (QLC)    12.5 %
=====  ==============  ==========  ================  ==========

The mapping must be distortion-minimizing: a one-level slip in either
cell should flip as few bits as possible.  :func:`build_pair_code`
assigns codewords along a boustrophedon (snake) walk of the level grid
— horizontally adjacent combinations get Gray-consecutive codewords, so
a slip of the *second* cell almost always costs one bit, and the snake
turn keeps first-cell slips cheap at the row boundaries.  Unused
combinations decode to the nearest used one (ties toward the
retention direction, i.e. the downward neighbour).
"""

from __future__ import annotations

import itertools

from repro.device.coding import TableCoding
from repro.errors import ConfigurationError


def gray_sequence(n_bits: int) -> list[int]:
    """The standard reflected Gray sequence of length ``2**n_bits``."""
    if n_bits < 0:
        raise ConfigurationError("negative bit count")
    return [i ^ (i >> 1) for i in range(1 << n_bits)]


def snake_order(n_levels: int) -> list[tuple[int, int]]:
    """Boustrophedon walk over the ``n_levels x n_levels`` grid.

    Consecutive entries differ by one level in exactly one cell, so
    assigning Gray-consecutive codewords along the walk minimizes the
    bit cost of single slips.
    """
    if n_levels < 2:
        raise ConfigurationError("need at least two levels")
    order = []
    for row in range(n_levels):
        cols = range(n_levels) if row % 2 == 0 else range(n_levels - 1, -1, -1)
        for col in cols:
            order.append((row, col))
    return order


def build_pair_code(n_levels: int) -> TableCoding:
    """A distortion-minimizing pair code for ``n_levels``-level cells.

    Uses the ``2**floor(log2(n_levels^2))`` first combinations of the
    snake walk as codewords; the remaining combinations decode to their
    nearest used neighbour (downward-biased, matching retention's
    dominant slip direction).
    """
    total = n_levels * n_levels
    n_bits = total.bit_length() - 1
    n_words = 1 << n_bits
    walk = snake_order(n_levels)
    used = walk[:n_words]
    gray = gray_sequence(n_bits)
    encode = {gray[i]: used[i] for i in range(n_words)}
    decode = {levels: word for word, levels in encode.items()}
    used_set = set(used)
    for combo in itertools.product(range(n_levels), repeat=2):
        if combo in used_set:
            continue
        decode[combo] = decode[_nearest_used(combo, used_set)]
    return TableCoding(encode, decode, n_levels=n_levels)


def slip_cost(coding: TableCoding) -> tuple[float, int]:
    """(mean, worst) bit errors over all single one-level slips."""
    n_levels = coding.n_levels
    total = 0
    worst = 0
    count = 0
    for word, levels in coding.encode_table.items():
        for cell in range(2):
            for delta in (-1, 1):
                slipped = list(levels)
                slipped[cell] += delta
                if not 0 <= slipped[cell] < n_levels:
                    continue
                decoded = coding.decode_table[tuple(slipped)]
                errors = bin(word ^ decoded).count("1")
                total += errors
                worst = max(worst, errors)
                count += 1
    return total / count, worst


def optimize_pair_code(
    n_levels: int, iterations: int = 2000, seed: int = 7
) -> TableCoding:
    """Improve the snake assignment by swap hill-climbing on slip cost.

    Deterministic local search: repeatedly swap two codewords'
    combinations and keep the swap when the (mean, worst) slip cost does
    not get worse.  For L = 3 this reaches the paper's Table 1 quality
    (worst-case two bits per slip).
    """
    import numpy as np

    if iterations < 0:
        raise ConfigurationError("negative iteration count")
    base = build_pair_code(n_levels)
    assignment = dict(base.encode_table)
    best = _rebuild(assignment, n_levels)
    best_cost = slip_cost(best)
    words = sorted(assignment)
    rng = np.random.default_rng(seed)
    for _ in range(iterations):
        a, b = rng.choice(len(words), size=2, replace=False)
        word_a, word_b = words[a], words[b]
        assignment[word_a], assignment[word_b] = (
            assignment[word_b],
            assignment[word_a],
        )
        candidate = _rebuild(assignment, n_levels)
        cost = slip_cost(candidate)
        if (cost[1], cost[0]) <= (best_cost[1], best_cost[0]):
            best, best_cost = candidate, cost
        else:
            assignment[word_a], assignment[word_b] = (
                assignment[word_b],
                assignment[word_a],
            )
    return best


def _rebuild(assignment: dict[int, tuple[int, int]], n_levels: int) -> TableCoding:
    """A TableCoding from a word->combination assignment."""
    decode = {levels: word for word, levels in assignment.items()}
    used = set(assignment.values())
    for combo in itertools.product(range(n_levels), repeat=2):
        if combo not in used:
            decode[combo] = decode[_nearest_used(combo, used)]
    return TableCoding(dict(assignment), decode, n_levels=n_levels)


def staged_program_plan(coding: TableCoding) -> list[dict[int, tuple[int, int]]]:
    """A monotone multi-pass program schedule for a pair code.

    The paper's two-step algorithm (Table 2) exploits structure specific
    to its L = 3 mapping.  The general construction programs in
    level-ascending passes: pass ``p`` raises each cell whose target is
    level ``p`` from its current level — every transition is upward, so
    any pair code is ISPP-programmable in at most ``L - 1`` passes.

    Returns one dict per pass mapping word -> the (cell I, cell II)
    levels after that pass.
    """
    n_levels = coding.n_levels
    passes: list[dict[int, tuple[int, int]]] = []
    current = {word: (0, 0) for word in coding.encode_table}
    for target_level in range(1, n_levels):
        after: dict[int, tuple[int, int]] = {}
        for word, target in coding.encode_table.items():
            levels = list(current[word])
            for cell in range(2):
                if target[cell] == target_level:
                    levels[cell] = target_level
            after[word] = (levels[0], levels[1])
        passes.append(after)
        current = after
    for word, target in coding.encode_table.items():
        if current[word] != target:
            raise ConfigurationError(
                f"staged plan failed to reach the target for word {word}"
            )
    return passes


def density_summary(n_levels: int) -> dict[str, float]:
    """Bits/cell and density loss of the pair code vs the full cell."""
    coding = build_pair_code(n_levels)
    import math

    full_bits = math.log2(n_levels)
    pair_bits = coding.density_bits_per_cell()
    return {
        "pair_bits_per_cell": pair_bits,
        "full_bits_per_cell": full_bits,
        "density_ratio": pair_bits / full_bits,
    }


def _nearest_used(
    combo: tuple[int, int], used: set[tuple[int, int]]
) -> tuple[int, int]:
    """Closest used combination (L1 distance, downward slips preferred)."""

    def key(candidate: tuple[int, int]) -> tuple[int, int]:
        distance = abs(candidate[0] - combo[0]) + abs(candidate[1] - combo[1])
        # Prefer candidates *below* the unused combo: an unused combo is
        # most often reached by upward drift of a used one, so decoding
        # downward recovers the original.
        upward_penalty = int(candidate[0] > combo[0]) + int(candidate[1] > combo[1])
        return (distance, upward_penalty)

    return min(sorted(used), key=key)
