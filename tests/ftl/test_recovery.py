"""Tests for the crash-consistency machinery in repro.ftl.recovery.

The durable-medium record log, the checkpoint + journal remount path,
and its cross-check against the full OOB scan.  End-to-end crash →
recover → resume runs live in tests/sim/test_crash.py.
"""

import math

import pytest

from repro.baselines.systems import SystemConfig, build_system
from repro.errors import ConfigurationError
from repro.faults.power import PowerConfig, SpoSchedule
from repro.ftl.config import SsdConfig
from repro.ftl.recovery import (
    RecoveryConfig,
    RecoveryManager,
    recovery_fingerprint,
)
from repro.sim.engine import SimulationEngine
from repro.traces.schema import TraceRecord


def small_config(buffer_pages=16):
    ssd = SsdConfig(n_blocks=64, pages_per_block=16, gc_free_block_threshold=2)
    return SystemConfig(
        ssd=ssd,
        footprint_pages=int(ssd.logical_pages * 0.4),
        buffer_pages=buffer_pages,
        hotness_window=64,
    )


def write_heavy_trace(n=400, footprint=100):
    """Writes dominate so flash programs (and GC erases) happen early."""
    return [
        TraceRecord(i * 200.0, (i * 13) % footprint, 1, i % 4 != 0)
        for i in range(n)
    ]


def run_system(config, recovery, trace, crash_us=None, name="flexlevel"):
    manager = RecoveryManager(recovery, config.ssd)
    system = build_system(name, config, recovery=manager)
    engine = SimulationEngine(system, warmup_fraction=0.0)
    result = engine.run(trace, "t", crash_us=crash_us)
    return system, manager, result


class TestRecoveryConfig:
    def test_rejects_non_positive_knobs(self):
        with pytest.raises(ConfigurationError):
            RecoveryConfig(checkpoint_interval_us=0.0)
        with pytest.raises(ConfigurationError):
            RecoveryConfig(oob_read_us=-1.0)

    def test_round_trips_to_dict(self):
        cfg = RecoveryConfig(checkpoint_interval_us=123.0, verify_scan=False)
        d = cfg.to_dict()
        assert d["checkpoint_interval_us"] == 123.0
        assert d["verify_scan"] is False


class TestPowerConfig:
    def test_disabled_by_default(self):
        cfg = PowerConfig()
        assert not cfg.enabled
        assert SpoSchedule(cfg).next_crash_after(0.0) is None

    def test_enabled_needs_a_mode(self):
        with pytest.raises(ConfigurationError):
            PowerConfig(enabled=True)
        with pytest.raises(ConfigurationError):
            PowerConfig(enabled=True, at_us=-5.0)
        with pytest.raises(ConfigurationError):
            PowerConfig(enabled=True, rate_per_s=-1.0)

    def test_fixed_cut_fires_once(self):
        sched = SpoSchedule(PowerConfig(enabled=True, at_us=5_000.0))
        assert sched.next_crash_after(0.0) == 5_000.0
        assert sched.next_crash_after(5_000.0) is None

    def test_rate_mode_is_seeded_and_monotone(self):
        cfg = PowerConfig(enabled=True, rate_per_s=50.0, seed=11, max_crashes=4)
        a = [SpoSchedule(cfg).next_crash_after(0.0) for _ in range(2)]
        assert a[0] == a[1]  # same seed, same first cut
        sched = SpoSchedule(cfg)
        cuts, origin = [], 0.0
        while (cut := sched.next_crash_after(origin)) is not None:
            cuts.append(cut)
            origin = cut
        assert len(cuts) == 4
        assert cuts == sorted(cuts)
        assert all(c > 0.0 for c in cuts)


class TestCheckpoints:
    def test_mount_checkpoint_exists_before_any_flash_traffic(self):
        """A crash before the first program must still replay from a
        checkpoint base (full scan stays a cross-check, not the only
        path) — the mount checkpoint taken right after prefill."""
        config = small_config(buffer_pages=512)
        recovery = RecoveryConfig(checkpoint_interval_us=20_000.0)
        # Read-only trace: the write buffer never evicts, no programs.
        trace = [TraceRecord(i * 500.0, i % 50, 1, False) for i in range(40)]
        _, manager, _ = run_system(config, recovery, trace, crash_us=10_000.0)
        assert manager.checkpoints_taken >= 1
        assert manager.checkpoint_before(10_000.0) is not None
        state = manager.replay_at(10_000.0)
        assert state is not None
        assert state.mapping() == manager.scan_at(10_000.0).mapping()

    def test_periodic_checkpoints_follow_the_interval(self):
        config = small_config()
        recovery = RecoveryConfig(checkpoint_interval_us=5_000.0)
        _, manager, result = run_system(config, recovery, write_heavy_trace())
        # Mount checkpoint plus at least one per elapsed interval-ish:
        # the trigger is piggybacked on program/erase, so we only
        # demand growth, not exact cadence.
        assert manager.checkpoints_taken > 2
        times = [cp.time_us for cp in manager._checkpoints]
        assert times == sorted(times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= 5_000.0 for g in gaps)

    def test_checkpoint_before_picks_newest_at_or_before(self):
        config = small_config()
        recovery = RecoveryConfig(checkpoint_interval_us=5_000.0)
        _, manager, _ = run_system(config, recovery, write_heavy_trace())
        times = [cp.time_us for cp in manager._checkpoints]
        mid = times[len(times) // 2]
        assert manager.checkpoint_before(mid).time_us == mid
        assert manager.checkpoint_before(mid + 1.0).time_us == mid
        before = [t for t in times if t < mid]
        assert manager.checkpoint_before(mid - 1.0).time_us == before[-1]

    def test_journal_shrinks_with_tighter_checkpoint_interval(self):
        crash = 60_000.0
        entries = {}
        for interval in (5_000.0, 1e9):
            config = small_config()
            _, manager, _ = run_system(
                config,
                RecoveryConfig(checkpoint_interval_us=interval),
                write_heavy_trace(),
                crash_us=crash,
            )
            entries[interval] = manager.replay_at(crash).journal_entries
        assert entries[5_000.0] < entries[1e9]


class TestRemountPaths:
    @pytest.mark.parametrize("interval", [2_000.0, 20_000.0, 1e9])
    def test_scan_equals_replay_across_intervals(self, interval):
        """The crash invariant at the manager level: checkpoint +
        journal replay reconstructs exactly what the full OOB scan
        reads, at every checkpoint cadence."""
        config = small_config()
        recovery = RecoveryConfig(checkpoint_interval_us=interval)
        _, manager, result = run_system(
            config, recovery, write_heavy_trace(), crash_us=55_000.0
        )
        assert result.crashed
        for T in (10_000.0, 33_333.3, 55_000.0):
            replay = manager.replay_at(T)
            scan = manager.scan_at(T)
            assert replay is not None
            assert replay.mapping() == scan.mapping()
            assert replay.versions() == scan.versions()

    def test_torn_page_excluded_from_durable_state(self):
        config = small_config()
        recovery = RecoveryConfig(checkpoint_interval_us=5_000.0)
        _, manager, _ = run_system(config, recovery, write_heavy_trace())
        programs = [
            r
            for r in manager._log
            if type(r).__name__ == "ProgramRecord" and r.kind == "host"
        ]
        assert programs, "write-heavy trace must reach flash"
        victim = programs[len(programs) // 2]
        # Cut mid-pulse: the page is torn, the scan must not map it.
        T = (victim.phys_start_us + victim.phys_end_us) / 2.0
        assert victim in manager.torn_programs(T)
        state = manager.scan_at(T)
        rec = state.live.get(victim.lpn)
        assert rec is None or rec.seq != victim.seq

    def test_reseed_carries_versions_and_takes_remount_checkpoint(self):
        config = small_config()
        recovery = RecoveryConfig(checkpoint_interval_us=5_000.0)
        _, manager, _ = run_system(
            config, recovery, write_heavy_trace(), crash_us=40_000.0
        )
        state = manager.scan_at(40_000.0)
        fresh = manager.reseed(state, 41_000.0)
        assert fresh.checkpoints_taken == 1
        assert fresh.checkpoint_before(41_000.0).time_us == 41_000.0
        # The carried mapping replays verbatim from the new baseline.
        replay = fresh.replay_at(41_000.0)
        assert replay is not None
        assert replay.versions() == state.versions()
        # Sequence numbers stay monotone past everything carried over.
        assert fresh._next_seq >= manager._next_seq
        assert all(r.seq < fresh._next_seq for r in fresh._log)

    def test_buffer_residents_are_the_plp_capture(self):
        """Acked buffer-resident writes are exactly what PLP replays:
        none of them may be silently dropped at remount."""
        config = small_config(buffer_pages=64)
        recovery = RecoveryConfig(checkpoint_interval_us=5_000.0)
        system, manager, result = run_system(
            config, recovery, write_heavy_trace(), crash_us=50_000.0
        )
        assert result.crashed
        residents = system.buffer.residents()
        state = manager.scan_at(result.crash_us)
        plp = manager.plp_log(result.crash_us, state.versions())
        for lpn in residents:
            assert lpn in plp, f"buffered dirty lpn {lpn} lost by PLP"


class TestFingerprint:
    def test_fingerprint_ignores_itself_and_pins_content(self):
        artifact = {"a": 1, "b": [1, 2]}
        fp = recovery_fingerprint(artifact)
        assert recovery_fingerprint({**artifact, "fingerprint": fp}) == fp
        assert recovery_fingerprint({"a": 2, "b": [1, 2]}) != fp
        assert len(fp) == 16
        assert not math.isnan(int(fp, 16))
