"""Configuration of the fault-injection subsystem.

One frozen dataclass holds every fault knob so a run's fault behaviour
is a single hashable value: manufacture-time bad-block density, the
P/E- and age-dependent program/erase failure laws, the uncorrectable-
read coupling, the spare-block budget and the read-scrub policy.

``enabled`` is the master switch and defaults to False: a default
:class:`FaultConfig` injects nothing, so every fault-free code path is
byte-identical to a build without the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the seeded fault injector.

    Parameters
    ----------
    enabled:
        Master switch; when False the injector is inert and the SSD
        behaves exactly as if no injector was attached.
    seed:
        Seed of the fault RNG.  Independent streams are spawned from it
        for bad-block sampling, program failures, erase failures and
        uncorrectable reads, so the schedules do not perturb each other
        (or the read-retry model's stream).
    initial_bad_block_rate:
        Per-block probability of being factory-marked bad (typical NAND
        datasheets allow up to 2 %).
    program_fail_base:
        Program-status failure probability per page program at the
        reference P/E count and zero device age.
    erase_fail_base:
        Erase failure probability per block erase at the reference P/E
        count.
    pe_reference:
        P/E count at which the base rates apply; wear above it
        accelerates failures through the :class:`~repro.device.wear.
        WearModel` sigma law raised to ``wear_exponent``.
    wear_exponent:
        Exponent on the wear-sigma ratio ``sigma(pe)/sigma(pe_ref)``
        in the failure acceleration.
    age_rate_per_khour:
        Linear growth of the program-failure probability per thousand
        hours of device age (trapped-charge accumulation).
    failure_cap:
        Upper bound on any single program/erase failure probability.
    spare_block_fraction:
        Fraction of the drive's blocks budgeted as spares backing
        grown-bad-block retirement; when the budget is spent the drive
        enters read-only degraded mode instead of crashing.
    uncorrectable_scale:
        Multiplier turning the retry ladder's final-round failure
        probability into the probability the read is uncorrectable
        (the top sensing level plus heroic recovery almost always
        salvages the data — but not always).
    scrub_enabled:
        Whether the background read-scrub refreshes pages whose
        predicted BER crossed the sensing trigger.
    scrub_trigger_levels:
        Refresh a page when its required extra sensing levels reach
        this value (1 = the paper's 4e-3 BER trigger).
    scrub_min_age_hours:
        Only refresh pages whose data age is at least this old —
        rewriting freshly-written data cannot lower its BER, so young
        pages are never scrubbed (prevents refresh storms on
        high-P/E drives whose BER is wear- rather than age-driven).
    """

    enabled: bool = False
    seed: int = 2027
    initial_bad_block_rate: float = 0.002
    program_fail_base: float = 2e-4
    erase_fail_base: float = 5e-5
    pe_reference: float = 3000.0
    wear_exponent: float = 2.0
    age_rate_per_khour: float = 0.1
    failure_cap: float = 0.25
    spare_block_fraction: float = 0.02
    uncorrectable_scale: float = 0.02
    scrub_enabled: bool = True
    scrub_trigger_levels: int = 1
    scrub_min_age_hours: float = 24.0

    def __post_init__(self) -> None:
        for name in (
            "initial_bad_block_rate",
            "program_fail_base",
            "erase_fail_base",
            "failure_cap",
            "spare_block_fraction",
            "uncorrectable_scale",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} outside [0, 1]: {value}")
        if self.pe_reference <= 0:
            raise ConfigurationError(f"non-positive pe_reference: {self.pe_reference}")
        if self.wear_exponent < 0:
            raise ConfigurationError(f"negative wear_exponent: {self.wear_exponent}")
        if self.age_rate_per_khour < 0:
            raise ConfigurationError(
                f"negative age_rate_per_khour: {self.age_rate_per_khour}"
            )
        if self.scrub_trigger_levels < 1:
            raise ConfigurationError("scrub_trigger_levels must be >= 1")
        if self.scrub_min_age_hours < 0:
            raise ConfigurationError("negative scrub_min_age_hours")

    def scaled(self, factor: float) -> "FaultConfig":
        """This config with its stochastic fault rates multiplied.

        ``factor`` scales the program/erase failure bases and the
        uncorrectable coupling (each capped at 1.0); the bad-block
        density, spare budget and scrub policy are left alone.  Used by
        the CLI's ``--fault-scale`` and the resilience bench to sweep
        fault pressure without re-deriving every knob.
        """
        if factor < 0:
            raise ConfigurationError(f"negative fault scale: {factor}")
        return replace(
            self,
            program_fail_base=min(1.0, self.program_fail_base * factor),
            erase_fail_base=min(1.0, self.erase_fail_base * factor),
            uncorrectable_scale=min(1.0, self.uncorrectable_scale * factor),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable view (for manifests and ledger hashing)."""
        return {
            "enabled": self.enabled,
            "seed": self.seed,
            "initial_bad_block_rate": self.initial_bad_block_rate,
            "program_fail_base": self.program_fail_base,
            "erase_fail_base": self.erase_fail_base,
            "pe_reference": self.pe_reference,
            "wear_exponent": self.wear_exponent,
            "age_rate_per_khour": self.age_rate_per_khour,
            "failure_cap": self.failure_cap,
            "spare_block_fraction": self.spare_block_fraction,
            "uncorrectable_scale": self.uncorrectable_scale,
            "scrub_enabled": self.scrub_enabled,
            "scrub_trigger_levels": self.scrub_trigger_levels,
            "scrub_min_age_hours": self.scrub_min_age_hours,
        }
