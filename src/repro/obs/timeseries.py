"""Virtual-time windowed telemetry series.

One end-of-run metric snapshot cannot show a long run's *shape*: when
the GC backlog stopped fitting into idle time, when retry rates spiked,
when the drive degraded to read-only.  A :class:`WindowedRecorder`
buckets observations into fixed windows of **simulated** time
(configurable, default 1 ms) so both engines emit a time-resolved view
— queue depth, in-flight operations per channel, retry rate, GC and
scrub activity, degraded-mode state — at O(windows × series) memory.

Two recording verbs share one per-window cell type:

* :meth:`WindowedRecorder.add` — counter-like accumulation (arrivals,
  retry rounds, drained GC microseconds).  The window's ``sum`` is the
  rate numerator.
* :meth:`WindowedRecorder.sample` — gauge-like observation (queue
  depth, degraded flag).  ``mean``/``last``/``min``/``max`` describe
  the window.

Everything is keyed by virtual time, so a fixed seed and config yield
byte-identical exports — the determinism the `repro explain` artifact
relies on.  Series names follow the dotted metric-namespace grammar of
:mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.metrics import _check_name

#: Default window width: 1 ms of simulated time.
DEFAULT_WINDOW_US = 1000.0


@dataclass
class WindowCell:
    """Aggregates of one series within one window."""

    n: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    last: float = 0.0

    def observe(self, value: float) -> None:
        self.n += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    def mean(self) -> float:
        return self.sum / self.n if self.n else 0.0


class WindowedRecorder:
    """Buckets virtual-time observations into fixed windows.

    Parameters
    ----------
    window_us:
        Window width in simulated microseconds (> 0).
    origin_us:
        Virtual time of window 0's left edge; observations before the
        origin are rejected (the simulators never go backwards).
    """

    def __init__(
        self, window_us: float = DEFAULT_WINDOW_US, origin_us: float = 0.0
    ):
        if not window_us > 0.0:
            raise ConfigurationError(f"window_us must be > 0, got {window_us}")
        if origin_us < 0.0:
            raise ConfigurationError(f"negative origin_us: {origin_us}")
        self.window_us = float(window_us)
        self.origin_us = float(origin_us)
        self._series: dict[str, dict[int, WindowCell]] = {}

    def window_index(self, time_us: float) -> int:
        """The window an instant falls into (left-closed intervals)."""
        if time_us < self.origin_us:
            raise ConfigurationError(
                f"time {time_us} precedes window origin {self.origin_us}"
            )
        return int((time_us - self.origin_us) // self.window_us)

    def _cell(self, series: str, time_us: float) -> WindowCell:
        windows = self._series.get(series)
        if windows is None:
            _check_name(series)
            windows = self._series[series] = {}
        index = self.window_index(time_us)
        cell = windows.get(index)
        if cell is None:
            cell = windows[index] = WindowCell()
        return cell

    def add(self, series: str, time_us: float, amount: float = 1.0) -> None:
        """Accumulate a counter-like observation into its window."""
        self._cell(series, time_us).observe(amount)

    def sample(self, series: str, time_us: float, value: float) -> None:
        """Record a gauge-like observation into its window."""
        self._cell(series, time_us).observe(value)

    # --- inspection -------------------------------------------------------------

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def total(self, series: str) -> float:
        """Sum over every window of one series (0 for unknown series)."""
        return sum(
            cell.sum for cell in self._series.get(series, {}).values()
        )

    def rows(self, series: str) -> list[dict[str, float]]:
        """One dict per populated window, ascending window order."""
        windows = self._series.get(series, {})
        out = []
        for index in sorted(windows):
            cell = windows[index]
            out.append(
                {
                    "window": index,
                    "start_us": self.origin_us + index * self.window_us,
                    "n": cell.n,
                    "sum": cell.sum,
                    "mean": cell.mean(),
                    "min": cell.min,
                    "max": cell.max,
                    "last": cell.last,
                }
            )
        return out

    def to_dict(self) -> dict[str, Any]:
        """Deterministic (sorted) JSON-serialisable export."""
        return {
            "window_us": self.window_us,
            "origin_us": self.origin_us,
            "series": {
                name: self.rows(name) for name in self.series_names()
            },
        }
