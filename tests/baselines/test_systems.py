"""Tests for the four storage systems' policies."""

import pytest

from repro.baselines.systems import (
    LevelAdjustOnlySystem,
    SystemConfig,
    build_system,
    system_names,
)
from repro.core.level_adjust import CellMode
from repro.ftl.config import SsdConfig
from repro.errors import ConfigurationError


@pytest.fixture
def ssd_config():
    return SsdConfig(
        n_blocks=64, pages_per_block=16, gc_free_block_threshold=2,
        initial_pe_cycles=6000,
    )


@pytest.fixture
def system_config(ssd_config):
    return SystemConfig(
        ssd=ssd_config,
        footprint_pages=int(ssd_config.logical_pages * 0.4),
        buffer_pages=8,
        hotness_window=5,
    )


class TestFactory:
    def test_names(self):
        assert system_names() == (
            "baseline", "ldpc-in-ssd", "leveladjust-only", "flexlevel",
        )

    def test_build_all(self, system_config, shared_policy):
        for name in system_names():
            system = build_system(name, system_config, level_adjust=shared_policy)
            assert system.name == name

    def test_unknown_rejected(self, system_config):
        with pytest.raises(ConfigurationError):
            build_system("nope", system_config)


class TestReadPolicies:
    def test_baseline_pays_worst_case(self, system_config, shared_policy):
        baseline = build_system("baseline", system_config, level_adjust=shared_policy)
        ldpc = build_system("ldpc-in-ssd", system_config, level_adjust=shared_policy)
        assert baseline.worst_levels > 0
        # a fresh page: adaptive reads fast, baseline still pays worst case
        lpn = 1
        baseline.ssd.host_write(lpn, CellMode.NORMAL, now_us=0.0)
        ldpc.ssd.host_write(lpn, CellMode.NORMAL, now_us=0.0)
        assert baseline.serve_read_page(lpn, 1.0) > ldpc.serve_read_page(lpn, 1.0)

    def test_leveladjust_reads_fast(self, system_config, shared_policy):
        la = build_system("leveladjust-only", system_config, level_adjust=shared_policy)
        ldpc = build_system("ldpc-in-ssd", system_config, level_adjust=shared_policy)
        # old prefilled data: reduced state needs no extra levels
        old_lpn = 0
        assert la.serve_read_page(old_lpn, 0.0) <= ldpc.serve_read_page(old_lpn, 0.0)

    def test_buffer_hit_is_cheap(self, system_config, shared_policy):
        system = build_system("ldpc-in-ssd", system_config, level_adjust=shared_policy)
        system.serve_write_page(3, 0.0)
        latency = system.serve_read_page(3, 1.0)
        assert latency == system.config.ssd.timing.buffer_hit_us


class TestWritePolicies:
    def test_modes(self, system_config, shared_policy):
        expectations = {
            "baseline": CellMode.NORMAL,
            "ldpc-in-ssd": CellMode.NORMAL,
            "leveladjust-only": CellMode.REDUCED,
        }
        for name, mode in expectations.items():
            system = build_system(name, system_config, level_adjust=shared_policy)
            assert system.write_mode(5) is mode

    def test_flexlevel_mode_follows_pool(self, system_config, shared_policy):
        system = build_system("flexlevel", system_config, level_adjust=shared_policy)
        assert system.write_mode(5) is CellMode.NORMAL
        system.access_eval.pool.admit(5)
        assert system.write_mode(5) is CellMode.REDUCED

    def test_writes_are_buffered_then_flushed(self, system_config, shared_policy):
        system = build_system("ldpc-in-ssd", system_config, level_adjust=shared_policy)
        for lpn in range(8):
            system.serve_write_page(lpn, 0.0)
        assert system.ssd.stats.flash_program_pages == 0
        system.serve_write_page(8, 0.0)  # evicts one page
        assert system.ssd.stats.flash_program_pages == 1
        assert system.take_background_us() > 0

    def test_flush_drains_buffer(self, system_config, shared_policy):
        system = build_system("ldpc-in-ssd", system_config, level_adjust=shared_policy)
        for lpn in range(5):
            system.serve_write_page(lpn, 0.0)
        system.flush(1.0)
        assert system.ssd.stats.flash_program_pages == 5
        assert len(system.buffer) == 0


class TestLevelAdjustOnly:
    def test_reduced_prefix_capacity_limited(self, ssd_config):
        prefix = LevelAdjustOnlySystem.max_reduced_prefix(ssd_config)
        assert 0 < prefix < ssd_config.logical_pages
        reduced_blocks = -(-prefix // ssd_config.reduced_pages_per_block)
        cold = ssd_config.logical_pages - prefix
        normal_blocks = -(-cold // ssd_config.pages_per_block)
        assert reduced_blocks + normal_blocks <= ssd_config.n_blocks

    def test_prefix_grows_with_op(self):
        tight = SsdConfig(n_blocks=64, pages_per_block=16, over_provisioning=0.05)
        roomy = SsdConfig(n_blocks=64, pages_per_block=16, over_provisioning=0.40)
        assert LevelAdjustOnlySystem.max_reduced_prefix(
            roomy
        ) >= LevelAdjustOnlySystem.max_reduced_prefix(tight) - tight.logical_pages * 0.0
        # roomier OP converts a larger *fraction* of the logical space
        assert (
            LevelAdjustOnlySystem.max_reduced_prefix(roomy) / roomy.logical_pages
            > LevelAdjustOnlySystem.max_reduced_prefix(tight) / tight.logical_pages
        )


class TestFlexLevelMigrations:
    def warm_reads(self, system, lpn, n=20, now=0.0):
        total = 0.0
        for _ in range(n):
            total += system.serve_read_page(lpn, now)
        return total

    def test_hot_old_page_promoted(self, system_config, shared_policy):
        system = build_system("flexlevel", system_config, level_adjust=shared_policy)
        # LPN 0 is prefilled with a sampled age; find an old page
        old_lpn = None
        for lpn in range(system_config.footprint_pages):
            info = system.ssd.read_info(lpn, 0.0)
            if shared_policy.extra_levels(info.mode, info.pe_cycles, info.age_hours) > 0:
                old_lpn = lpn
                break
        assert old_lpn is not None
        self.warm_reads(system, old_lpn)
        assert old_lpn in system.access_eval.pool
        assert system.ssd.mode_of(old_lpn) is CellMode.REDUCED
        assert system.ssd.stats.promotions == 1

    def test_promotion_work_is_background(self, system_config, shared_policy):
        system = build_system("flexlevel", system_config, level_adjust=shared_policy)
        self.warm_reads(system, 0)
        if system.ssd.stats.promotions:
            assert system.take_background_us() > 0


class TestValidation:
    def test_footprint_bounds(self, ssd_config):
        with pytest.raises(ConfigurationError):
            SystemConfig(ssd=ssd_config, footprint_pages=ssd_config.logical_pages + 1)

    def test_age_sampling_reproducible(self, system_config):
        assert (system_config.initial_ages() == system_config.initial_ages()).all()

    def test_pool_pages(self, ssd_config):
        config = SystemConfig(ssd=ssd_config, reduced_pool_fraction=0.1)
        assert config.pool_pages == int(0.1 * ssd_config.logical_pages)
