"""The seven paper workloads as synthetic presets (paper §6.2).

Parameters follow each original trace's published character:

* **fin-2** — UMass Financial2, OLTP: small requests, read-mostly
  (~82 % reads), strong skew, high arrival rate.
* **web-1 / web-2** — search-engine web servers: overwhelmingly reads
  (~99 %) of a small hot set; writes are rare (which is why Fig. 7a's
  *relative* write increase peaks there).
* **prj-1 / prj-2** — MSR Cambridge project directories: mixed
  read/write, moderate skew, larger requests.
* **win-1 / win-2** — developer PC disks: moderate read fraction,
  bursty, some sequentiality.

Footprints are expressed as a fraction of the simulated SSD's logical
space and materialized by :func:`make_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.traces.synthetic import SyntheticWorkload


@dataclass(frozen=True)
class WorkloadPreset:
    """A named workload with a relative footprint."""

    name: str
    footprint_fraction: float
    read_fraction: float
    read_zipf_s: float
    write_zipf_s: float
    mean_request_pages: float
    sequential_fraction: float
    mean_interarrival_us: float


PAPER_WORKLOADS: dict[str, WorkloadPreset] = {
    "fin-2": WorkloadPreset(
        name="fin-2",
        footprint_fraction=0.30,
        read_fraction=0.82,
        read_zipf_s=1.0,
        write_zipf_s=1.0,
        mean_request_pages=1.3,
        sequential_fraction=0.05,
        mean_interarrival_us=1400.0,
    ),
    "web-1": WorkloadPreset(
        name="web-1",
        footprint_fraction=0.40,
        read_fraction=0.99,
        read_zipf_s=1.1,
        write_zipf_s=0.5,
        mean_request_pages=2.0,
        sequential_fraction=0.15,
        mean_interarrival_us=1000.0,
    ),
    "web-2": WorkloadPreset(
        name="web-2",
        footprint_fraction=0.42,
        read_fraction=0.985,
        read_zipf_s=0.95,
        write_zipf_s=0.5,
        mean_request_pages=2.5,
        sequential_fraction=0.20,
        mean_interarrival_us=1400.0,
    ),
    "prj-1": WorkloadPreset(
        name="prj-1",
        footprint_fraction=0.50,
        read_fraction=0.55,
        read_zipf_s=0.8,
        write_zipf_s=1.05,
        mean_request_pages=3.0,
        sequential_fraction=0.25,
        mean_interarrival_us=5000.0,
    ),
    "prj-2": WorkloadPreset(
        name="prj-2",
        footprint_fraction=0.48,
        read_fraction=0.65,
        read_zipf_s=0.85,
        write_zipf_s=1.05,
        mean_request_pages=2.5,
        sequential_fraction=0.20,
        mean_interarrival_us=4200.0,
    ),
    "win-1": WorkloadPreset(
        name="win-1",
        footprint_fraction=0.45,
        read_fraction=0.70,
        read_zipf_s=0.9,
        write_zipf_s=1.05,
        mean_request_pages=2.0,
        sequential_fraction=0.30,
        mean_interarrival_us=3000.0,
    ),
    "win-2": WorkloadPreset(
        name="win-2",
        footprint_fraction=0.48,
        read_fraction=0.60,
        read_zipf_s=0.85,
        write_zipf_s=1.05,
        mean_request_pages=2.2,
        sequential_fraction=0.25,
        mean_interarrival_us=4200.0,
    ),
}


def workload_names() -> tuple[str, ...]:
    """The seven paper workload names, in the paper's order."""
    return ("fin-2", "web-1", "web-2", "prj-1", "prj-2", "win-1", "win-2")


def make_workload(name: str, logical_pages: int) -> SyntheticWorkload:
    """Instantiate a preset against a concrete SSD size."""
    if name not in PAPER_WORKLOADS:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        )
    preset = PAPER_WORKLOADS[name]
    footprint = max(1, int(preset.footprint_fraction * logical_pages))
    return SyntheticWorkload(
        name=preset.name,
        footprint_pages=footprint,
        read_fraction=preset.read_fraction,
        read_zipf_s=preset.read_zipf_s,
        write_zipf_s=preset.write_zipf_s,
        mean_request_pages=preset.mean_request_pages,
        sequential_fraction=preset.sequential_fraction,
        mean_interarrival_us=preset.mean_interarrival_us,
    )
