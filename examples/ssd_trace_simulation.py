"""System-level comparison on a trace (paper §6.2 workflow).

Builds the four storage systems on the same worn SSD, replays one of
the seven synthetic paper workloads against each, and prints the
Fig. 6(a)-style comparison plus the endurance counters of Fig. 7.

Run:  python examples/ssd_trace_simulation.py [workload] [n_requests]
"""

import sys

from repro.baselines import SystemConfig, build_system, system_names
from repro.core.level_adjust import LevelAdjustPolicy
from repro.ftl import SsdConfig
from repro.sim import SimulationEngine
from repro.traces import make_workload, workload_names


def main(workload_name: str = "fin-2", n_requests: int = 30_000) -> None:
    if workload_name not in workload_names():
        raise SystemExit(f"unknown workload {workload_name!r}; pick from {workload_names()}")

    ssd_config = SsdConfig(n_blocks=256, pages_per_block=64, initial_pe_cycles=6000)
    workload = make_workload(workload_name, ssd_config.logical_pages)
    trace = workload.generate(n_requests, seed=1)
    policy = LevelAdjustPolicy()  # shared BER oracle; evaluations are cached

    print(
        f"workload {workload_name}: {n_requests} requests, "
        f"{workload.footprint_pages} hot pages of {ssd_config.logical_pages} logical "
        f"({ssd_config.logical_capacity_bytes / 2**30:.1f} GiB drive at 6000 P/E)"
    )
    print()
    header = (
        f"{'system':16s} {'mean resp (us)':>15s} {'read resp':>10s} "
        f"{'extra lvls':>10s} {'WA':>5s} {'erases':>7s} {'promos':>7s}"
    )
    print(header)

    baseline_mean = None
    for name in system_names():
        config = SystemConfig(
            ssd=ssd_config,
            footprint_pages=workload.footprint_pages,
            buffer_pages=512,
        )
        system = build_system(name, config, level_adjust=policy)
        result = SimulationEngine(system, warmup_fraction=0.25).run(trace, workload_name)
        mean = result.mean_response_us()
        if baseline_mean is None:
            baseline_mean = mean
        print(
            f"{name:16s} {mean:12.1f} ({mean / baseline_mean:4.2f}x) "
            f"{result.mean_read_response_us():10.1f} "
            f"{result.stats['mean_extra_levels']:10.2f} "
            f"{result.stats['write_amplification']:5.2f} "
            f"{result.stats['erase_blocks']:7.0f} "
            f"{result.stats['promotions']:7.0f}"
        )


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        workload_name=args[0] if args else "fin-2",
        n_requests=int(args[1]) if len(args) > 1 else 30_000,
    )
