"""Stage-3 fit: add the baseline-plan margin as a free parameter."""
import sys
sys.path.insert(0, '/root/repo/scripts')
import numpy as np
from scipy import optimize
from repro.core import ReduceCodeCoding
from repro.device import BerAnalyzer, C2cModel
from repro.device.voltages import VoltagePlan, reduced_plan
from repro.device.retention import RetentionModel
from repro.device.wear import WearModel
from fit_tail import BASE, NUNMA

CODING = ReduceCodeCoding()

def base_plan(margin, sp):
    refs = tuple(v - margin for v in (2.30, 2.90, 3.50))
    return VoltagePlan("normal-mlc", (2.30, 2.90, 3.50), refs, vpp=0.20, sigma_p=sp)

def loss(params, verbose=False):
    kw, aw, kd_s, km_s, sp, tw, ts, margin = params
    if min(kw,aw,kd_s,km_s,tw,ts)<=0 or sp<0 or tw>1 or not 0.005<=margin<=0.25: return 1e9
    ret = RetentionModel(kd=4e-4*kd_s, km=2e-6*km_s, tail_weight=tw, tail_scale=ts)
    wear = WearModel(k_w=kw, a_w=aw)
    base = BerAnalyzer(base_plan(margin, sp), retention=ret, wear=wear)
    reduced = {c: BerAnalyzer(reduced_plan(c, sigma_p=sp), coding=CODING, retention=ret,
                              wear=wear, c2c=C2cModel(level_usage=CODING.level_usage()))
               for c in NUNMA}
    err = 0.0
    tables = [('base', base, BASE)] + [(n, reduced[n], NUNMA[n]) for n in NUNMA]
    for name, an, table in tables:
        weight = 2.0 if name == 'base' else 1.0
        for (pe,t),ref in table.items():
            b = an.retention_ber(pe,t).total
            if b<=0: b=1e-9
            err += weight*(np.log(b/ref))**2
            if verbose: print(f'{name} pe={pe} t={t:4}: ours={b:.4g} paper={ref:.4g} ratio={b/ref:.2f}')
    return err

if __name__ == '__main__':
    x0 = [0.01069, 0.38913, 0.32696, 0.50841, 0.046971, 0.0029185, 0.084975, 0.04]
    print('initial', loss(x0), flush=True)
    res = optimize.minimize(loss, x0, method='Nelder-Mead',
                            options={'maxiter':600,'xatol':2e-4,'fatol':1e-2})
    print('refined', [float(v) for v in res.x], res.fun, flush=True)
    loss(res.x, verbose=True)
