"""Refresh the committed benchmark baseline the CI perf gate compares to.

Runs the full bench suite through the harness (``repro bench run``) and
snapshots the resulting ledger run into
``benchmarks/baselines/bench_baseline_<mode>.json``.  Commit the updated
file together with the change that legitimately moved the numbers —
the diff is the reviewable record of what shifted.

    PYTHONPATH=src python scripts/refresh_bench_baseline.py            # quick
    PYTHONPATH=src python scripts/refresh_bench_baseline.py --mode full
    PYTHONPATH=src python scripts/refresh_bench_baseline.py --from-ledger

``--from-ledger`` skips the (slow) run and snapshots the most recent
ledger run of the chosen mode instead — useful right after a manual
``repro bench run``.
"""

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.bench import BenchLedger  # noqa: E402
from repro.obs.bench_cli import baseline_path, write_baseline  # noqa: E402
from repro.obs.bench_harness import discover_benches, run_benches  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("quick", "full"), default="quick")
    parser.add_argument(
        "--seed", type=int, default=None, help="base RNG seed override"
    )
    parser.add_argument(
        "--from-ledger",
        action="store_true",
        help="snapshot the latest ledger run instead of re-running benches",
    )
    args = parser.parse_args(argv)

    if not args.from_ledger:
        scripts = discover_benches(REPO_ROOT / "benchmarks")
        outcomes = run_benches(
            scripts, quick=args.mode == "quick", seed=args.seed, root=REPO_ROOT
        )
        failed = [o.script.name for o in outcomes if not o.ok]
        if failed:
            print(f"refusing to snapshot a failing run: {', '.join(failed)}")
            return 1

    ledger = BenchLedger(REPO_ROOT / "benchmarks" / "results" / "ledger.jsonl")
    try:
        results = ledger.select("latest", mode=args.mode)
    except LookupError as exc:
        print(f"error: {exc}")
        return 1
    path = write_baseline(baseline_path(REPO_ROOT, args.mode), results, args.mode)
    print(
        f"baseline refreshed: {path.relative_to(REPO_ROOT)} "
        f"({len(results)} benches, mode={args.mode})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
