"""Fig. 6(b): FlexLevel's gain over LDPC-in-SSD grows with P/E count.

Paper claims: the average response-time reduction vs LDPC-in-SSD rises
from 21 % at 4000 P/E to 33 % at 6000 P/E.
"""

from conftest import BENCH_SEED, BENCH_WORKLOADS, QUICK, write_table

from repro.analysis.experiments import SystemExperimentConfig

_PE_POINTS = (4000, 5000, 6000)


def test_fig6b_pe_sweep(benchmark, results_dir, experiment_config, shared_policy, bench_case):
    n_requests = experiment_config.n_requests // 2
    bench_case.configure(
        n_requests=n_requests,
        workloads=list(BENCH_WORKLOADS),
        pe_points=list(_PE_POINTS),
    )

    def run():
        # Reuse the session policy's BER cache across P/E points.
        from repro.analysis import experiments

        config = SystemExperimentConfig(
            n_blocks=experiment_config.n_blocks,
            n_requests=n_requests,
            seed=BENCH_SEED,
        )
        reductions = {}
        for pe in _PE_POINTS:
            runs = experiments.run_workload_matrix(
                config,
                workloads=BENCH_WORKLOADS,
                systems=("ldpc-in-ssd", "flexlevel"),
                pe_cycles=pe,
                policy=shared_policy,
            )
            by_workload = {}
            for r in runs:
                by_workload.setdefault(r.workload, {})[r.system] = r.mean_response_us
            ratios = [v["flexlevel"] / v["ldpc-in-ssd"] for v in by_workload.values()]
            reductions[pe] = 1.0 - sum(ratios) / len(ratios)
        return reductions

    reductions = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["P/E     response-time reduction vs ldpc-in-ssd"]
    for pe, reduction in sorted(reductions.items()):
        lines.append(f"{pe:5d}   {reduction:+.1%}")
    lines.append("")
    lines.append("paper: +21% at 4000 rising to +33% at 6000")
    write_table(results_dir, "fig6b_pe_sweep", lines)

    bench_case.emit(
        {f"reduction_pe{pe}": reductions[pe] for pe in _PE_POINTS},
        specs={f"reduction_pe{pe}": {"direction": "higher"} for pe in _PE_POINTS},
        table="fig6b_pe_sweep",
    )

    if not QUICK:
        # Paper shape: the gain exists at high wear and grows with P/E.
        assert reductions[6000] > 0.0
        assert reductions[6000] > reductions[4000]
