"""Tests for the ECC-protected functional data path."""

import numpy as np
import pytest

from repro.core.level_adjust import CellMode
from repro.device.geometry import NandGeometry
from repro.ecc.bch import BchCode
from repro.ecc.ldpc.code import LdpcCode
from repro.functional.pipeline import ProtectedPageStore, SectorAddress
from repro.functional.store import FunctionalPageStore
from repro.errors import ConfigurationError, DecodingFailure


@pytest.fixture
def store():
    return FunctionalPageStore(
        n_blocks=4,
        geometry=NandGeometry(wordlines_per_block=2, cells_per_wordline=1024),
    )


@pytest.fixture
def bch_store(store):
    return ProtectedPageStore(store, BchCode(m=10, t=12, shortened_k=256))


class TestCleanPath:
    @pytest.mark.parametrize("mode", [CellMode.NORMAL, CellMode.REDUCED])
    def test_roundtrip(self, bch_store, rng, mode):
        data = rng.integers(0, 2, bch_store.data_bits).astype(np.uint8)
        address = SectorAddress(0, 0)
        bch_store.write_sector(address, data, mode)
        assert np.array_equal(bch_store.read_sector(address), data)
        assert bch_store.sectors_recovered == 1

    def test_ldpc_codec_roundtrip(self, store, rng):
        protected = ProtectedPageStore(store, LdpcCode.regular(n=512, wc=3, wr=8, seed=55))
        data = rng.integers(0, 2, protected.data_bits).astype(np.uint8)
        protected.write_sector(SectorAddress(1, 0), data, CellMode.REDUCED)
        assert np.array_equal(protected.read_sector(SectorAddress(1, 0)), data)

    def test_oversized_codeword_rejected(self):
        tiny = FunctionalPageStore(
            n_blocks=1, geometry=NandGeometry(wordlines_per_block=1, cells_per_wordline=64)
        )
        with pytest.raises(ConfigurationError):
            ProtectedPageStore(tiny, BchCode(m=10, t=12, shortened_k=256))

    def test_wrong_payload_size_rejected(self, bch_store):
        with pytest.raises(ConfigurationError):
            bch_store.write_sector(
                SectorAddress(0, 0), np.zeros(7, dtype=np.uint8), CellMode.NORMAL
            )


class TestDistortedPath:
    def test_light_drift_recovered(self, bch_store, rng):
        addresses = []
        for offset in range(4):
            data = rng.integers(0, 2, bch_store.data_bits).astype(np.uint8)
            address = SectorAddress(0, offset)
            bch_store.write_sector(address, data, CellMode.REDUCED)
            addresses.append((address, data))
        bch_store.store.inject_drift(rng, downward_rate=0.002)
        for address, data in addresses:
            assert np.array_equal(bch_store.read_sector(address), data)

    def test_heavy_drift_detected(self, bch_store, rng):
        data = rng.integers(0, 2, bch_store.data_bits).astype(np.uint8)
        address = SectorAddress(0, 0)
        bch_store.write_sector(address, data, CellMode.NORMAL)
        bch_store.store.inject_drift(rng, downward_rate=0.4)
        with pytest.raises(DecodingFailure):
            bch_store.read_sector(address)
        assert bch_store.sectors_lost == 1

    def test_scrub_reports_totals(self, bch_store, rng):
        addresses = []
        for offset in range(3):
            data = rng.integers(0, 2, bch_store.data_bits).astype(np.uint8)
            address = SectorAddress(1, offset)
            bch_store.write_sector(address, data, CellMode.REDUCED)
            addresses.append(address)
        bch_store.store.inject_drift(rng, downward_rate=0.001)
        report = bch_store.scrub(addresses)
        assert report["recovered"] + report["lost"] == 3

    def test_reduce_code_survives_more_drift_than_gray(self, store, rng):
        """The end-to-end version of the paper's distortion claim: at the
        same cell-distortion rate, ReduceCode pages hand the codec no
        more bit errors than Gray pages (3 bits ride on 2 cells)."""
        codec = BchCode(m=10, t=12, shortened_k=256)
        results = {}
        for mode, block_id in ((CellMode.NORMAL, 0), (CellMode.REDUCED, 1)):
            protected = ProtectedPageStore(store, codec)
            payloads = []
            for offset in range(4):
                data = rng.integers(0, 2, protected.data_bits).astype(np.uint8)
                protected.write_sector(SectorAddress(block_id, offset), data, mode)
                payloads.append(data)
            raw_errors = 0
            block = store.block(block_id)
            before = [block.read_page(i).copy() for i in range(4)]
            block.inject_drift(np.random.default_rng(99), downward_rate=0.01)
            for i in range(4):
                raw_errors += int((block.read_page(i) != before[i]).sum())
            results[mode] = raw_errors
            store.erase_block(block_id)
        # both modes produce errors; neither explodes relative to cells
        assert results[CellMode.NORMAL] > 0
        assert results[CellMode.REDUCED] > 0
