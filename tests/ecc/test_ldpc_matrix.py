"""Tests for GF(2) linear algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.ldpc.matrix import gf2_rank, gf2_row_reduce, gf2_systematic_form
from repro.errors import ConfigurationError


class TestRowReduce:
    def test_identity_unchanged(self):
        eye = np.eye(4, dtype=np.uint8)
        reduced, pivots = gf2_row_reduce(eye)
        assert np.array_equal(reduced, eye)
        assert pivots == [0, 1, 2, 3]

    def test_dependent_rows_zeroed(self):
        m = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        reduced, pivots = gf2_row_reduce(m)
        assert len(pivots) == 2
        assert not reduced[2].any()

    def test_rank(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 2

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            gf2_row_reduce(np.array([[2, 0]], dtype=np.uint8))

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            gf2_row_reduce(np.zeros(4, dtype=np.uint8))


class TestSystematicForm:
    def test_hamming_7_4(self):
        h = np.array(
            [[1, 1, 0, 1, 1, 0, 0], [1, 0, 1, 1, 0, 1, 0], [0, 1, 1, 1, 0, 0, 1]],
            dtype=np.uint8,
        )
        h_sys, perm, generator = gf2_systematic_form(h)
        assert generator.shape == (4, 7)
        # G's rows are codewords of the permuted code
        assert not np.any((h_sys @ generator.T) % 2)
        # systematic: identity in the message section
        assert np.array_equal(generator[:, :4], np.eye(4, dtype=np.uint8))

    def test_redundant_rows_dropped(self):
        h = np.array([[1, 1, 0], [1, 1, 0]], dtype=np.uint8)
        h_sys, perm, generator = gf2_systematic_form(h)
        assert h_sys.shape[0] == 1
        assert generator.shape[0] == 2

    def test_full_rank_square_rejected(self):
        with pytest.raises(ConfigurationError):
            gf2_systematic_form(np.eye(3, dtype=np.uint8))

    def test_zero_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            gf2_systematic_form(np.zeros((2, 4), dtype=np.uint8))


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_property_generator_orthogonal_to_h(data):
    rows = data.draw(st.integers(2, 6))
    cols = data.draw(st.integers(rows + 1, 12))
    bits = data.draw(
        st.lists(st.integers(0, 1), min_size=rows * cols, max_size=rows * cols)
    )
    h = np.array(bits, dtype=np.uint8).reshape(rows, cols)
    if gf2_rank(h) == 0 or gf2_rank(h) == cols:
        return  # degenerate: no code
    h_sys, perm, generator = gf2_systematic_form(h)
    assert not np.any((h_sys @ generator.T) % 2)
