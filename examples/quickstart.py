"""Quickstart: the FlexLevel story in a dozen calls.

Walks the pipeline end to end: raw BER of a worn MLC cell, the
soft-sensing levels LDPC demands, what that does to read latency, and
how the reduced-state (LevelAdjust + NUNMA + ReduceCode) cell escapes
the penalty.

Run:  python examples/quickstart.py
"""

from repro.analysis import calibrated_analyzer
from repro.core import ReduceCodeCoding
from repro.device.voltages import normal_mlc_plan, reduced_plan
from repro.ecc.ldpc.latency import ReadLatencyModel
from repro.ecc.ldpc.sensing import SensingLevelPolicy


def main() -> None:
    pe_cycles, age_hours = 6000, 720.0  # a worn drive, month-old data

    # 1. Raw BER of a normal (four-level, Gray-coded) MLC page.
    normal = calibrated_analyzer(normal_mlc_plan())
    normal_ber = normal.retention_ber(pe_cycles, age_hours).total
    print(f"normal-state BER at {pe_cycles} P/E, {age_hours:.0f} h: {normal_ber:.2e}")

    # 2. How many extra soft-sensing levels does LDPC need at that BER?
    sensing = SensingLevelPolicy()
    levels = sensing.required_levels(normal_ber)
    print(f"extra LDPC soft-sensing levels required: {levels}")

    # 3. What does that cost on every read?
    latency = ReadLatencyModel()
    print(
        f"page read latency: {latency.read_latency_us(levels):.0f} us "
        f"({latency.slowdown(levels):.1f}x the fast-path read)"
    )

    # 4. The same data in a reduced-state cell (3 levels, ReduceCode,
    #    NUNMA 3 margins): BER falls below the sensing trigger.
    reduced = calibrated_analyzer(reduced_plan("nunma3"), coding=ReduceCodeCoding())
    reduced_ber = reduced.retention_ber(pe_cycles, age_hours).total
    reduced_levels = sensing.required_levels(reduced_ber)
    print(
        f"reduced-state BER: {reduced_ber:.2e} -> {reduced_levels} extra levels, "
        f"read latency {latency.read_latency_us(reduced_levels):.0f} us"
    )

    # 5. The price: density. ReduceCode stores 1.5 bits/cell vs 2.
    coding = ReduceCodeCoding()
    print(
        f"density cost: {coding.density_bits_per_cell():.2f} bits/cell vs 2.00 "
        "(25% loss) — which is why AccessEval applies it selectively"
    )


if __name__ == "__main__":
    main()
