"""Exception hierarchy for the FlexLevel reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent."""


class DeviceError(ReproError):
    """A NAND device model was used outside its legal envelope."""


class ProgramError(DeviceError):
    """An illegal program operation (e.g. programming a non-erased cell)."""


class EccError(ReproError):
    """Base class for ECC codec errors."""


class DecodingFailure(EccError):
    """A codec could not recover the stored codeword.

    Attributes
    ----------
    iterations:
        Number of decoder iterations performed before giving up
        (``None`` for non-iterative codecs).
    """

    def __init__(self, message: str, iterations: int | None = None):
        super().__init__(message)
        self.iterations = iterations


class FtlError(ReproError):
    """The flash translation layer reached an invalid state."""


class OutOfSpaceError(FtlError):
    """No free page could be allocated even after garbage collection."""


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed."""


class SimulationError(ReproError):
    """A simulation engine violated one of its own invariants
    (non-monotone virtual time, lost or double-serviced operations)."""
