"""QoS scheduling across tenant submission queues.

When a controller slot frees, exactly one question is asked: *which
tenant's SQ head goes next?*  The three disciplines answer it
differently:

``fifo``
    Global submission order — the baseline every shared queue
    degenerates to.  A noisy neighbor's burst sits in front of every
    victim request that arrived after it, so victim tail latency
    inherits the neighbor's backlog.
``wfq``
    Start-time fair queueing (SFQ, Goyal et al.): every dispatched
    request gets a start tag ``S = max(V, F_tenant)`` and a finish tag
    ``F_tenant = S + cost / weight``; the scheduler serves the eligible
    head with the smallest start tag and advances the virtual clock
    ``V`` to it.  Cost is the request's page count, so fair shares are
    in *work*, not request counts.  A tenant flooding its SQ only drags
    its own finish tags forward — other tenants' tags, and therefore
    their service, are untouched.  Idle tenants never accumulate
    credit: ``max(V, ·)`` forgets unused share, which is what makes
    the discipline work-conserving.
``edf``
    Earliest deadline first: heads ordered by ``submit + slo``.
    Urgency-aware, but under sustained overload every deadline is
    eventually late and the discipline converges to FIFO — the bench
    shows exactly that contrast.

All ties break on ``(tenant_id, seq)`` so scheduling is deterministic
for a fixed seed and mix.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.serve.queues import SubmittedRequest
from repro.serve.tenants import TenantSpec

SCHEDULER_NAMES: tuple[str, ...] = ("fifo", "wfq", "edf")


class QosScheduler:
    """Chooses which eligible SQ head a freed slot serves next."""

    name = "base"

    def select(
        self, heads: list[SubmittedRequest], now_us: float
    ) -> SubmittedRequest:
        """The head to dispatch (``heads`` is non-empty, all eligible)."""
        raise NotImplementedError

    def on_dispatch(self, request: SubmittedRequest) -> None:
        """Account one dispatched request (default: stateless)."""


class FifoScheduler(QosScheduler):
    """Global submission order, tenant-blind."""

    name = "fifo"

    def select(
        self, heads: list[SubmittedRequest], now_us: float
    ) -> SubmittedRequest:
        return min(heads, key=lambda r: (r.submit_us, r.tenant_id, r.seq))


class WeightedFairScheduler(QosScheduler):
    """Start-time fair queueing over tenant weights (cost = pages)."""

    name = "wfq"

    def __init__(self, specs: list[TenantSpec]):
        if not specs:
            raise ConfigurationError("weighted-fair scheduler needs tenants")
        self._weights = {spec.tenant_id: spec.weight for spec in specs}
        self._finish_tags = {spec.tenant_id: 0.0 for spec in specs}
        self.virtual_time = 0.0

    def start_tag(self, request: SubmittedRequest) -> float:
        try:
            finish = self._finish_tags[request.tenant_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {request.tenant_id} at the scheduler"
            ) from None
        return max(self.virtual_time, finish)

    def select(
        self, heads: list[SubmittedRequest], now_us: float
    ) -> SubmittedRequest:
        return min(
            heads,
            key=lambda r: (self.start_tag(r), r.tenant_id, r.seq),
        )

    def on_dispatch(self, request: SubmittedRequest) -> None:
        start = self.start_tag(request)
        self.virtual_time = start
        self._finish_tags[request.tenant_id] = (
            start + request.cost / self._weights[request.tenant_id]
        )


class DeadlineScheduler(QosScheduler):
    """Earliest deadline first over ``submit + slo``."""

    name = "edf"

    def select(
        self, heads: list[SubmittedRequest], now_us: float
    ) -> SubmittedRequest:
        return min(heads, key=lambda r: (r.deadline_us, r.tenant_id, r.seq))


def make_scheduler(name: str, specs: list[TenantSpec]) -> QosScheduler:
    """Instantiate a scheduler by CLI name."""
    if name == "fifo":
        return FifoScheduler()
    if name == "wfq":
        return WeightedFairScheduler(specs)
    if name == "edf":
        return DeadlineScheduler()
    raise ConfigurationError(
        f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}"
    )
