"""Robustness: Table 5 under calibration-constant perturbations.

Scales each of the eight fitted constants by 0.8x and 1.25x and checks
whether the Table 5 structure (the zero 0-day column and monotonicity
in wear and age) survives — the reproduction does not hinge on the
exact fitted point.
"""

from conftest import write_table

from repro.analysis.sensitivity import run_sensitivity


def test_sensitivity(benchmark, results_dir):
    results = benchmark.pedantic(
        run_sensitivity, rounds=1, iterations=1, kwargs={"factors": (0.8, 1.25)}
    )

    lines = ["constant      factor  cells changed  max delta  shape preserved"]
    for result in results:
        lines.append(
            f"{result.constant:12s}  {result.factor:6.2f}  "
            f"{result.cells_changed:13d}  {result.max_level_delta:9d}  "
            f"{'yes' if result.shape_preserved else 'NO'}"
        )
    fragile = [r for r in results if not r.shape_preserved]
    lines.append("")
    lines.append(
        "every +-25% single-constant perturbation preserves Table 5's structure"
        if not fragile
        else f"FRAGILE under: {[(r.constant, r.factor) for r in fragile]}"
    )
    write_table(results_dir, "sensitivity", lines)

    assert not fragile
    # The matrix is genuinely sensitive to the constants (cells move),
    # just not structurally.
    assert any(r.cells_changed > 0 for r in results)
