"""End-to-end crash → recover → resume tests (repro.sim.crash).

The headline property: at every seeded crash point, the recovered
mapping equals the committed prefix of an uncrashed reference run of
the same (trace, config, seed) — and ``recover`` itself cross-checks
the two remount paths (journal replay vs full OOB scan) and verifies
no acknowledged write is lost, raising on violation, so simply
completing the sweep exercises the crash invariant.
"""

import json

import pytest

from repro.baselines.systems import SystemConfig, build_system
from repro.faults.power import PowerConfig
from repro.ftl.config import SsdConfig
from repro.ftl.recovery import RecoveryConfig, RecoveryManager
from repro.sim.crash import recover, run_with_crashes
from repro.sim.des.engine import DesSimulationEngine
from repro.sim.engine import SimulationEngine
from repro.traces.schema import TraceRecord

RECOVERY = RecoveryConfig(checkpoint_interval_us=5_000.0)


def small_config(buffer_pages=16):
    ssd = SsdConfig(n_blocks=64, pages_per_block=16, gc_free_block_threshold=2)
    return SystemConfig(
        ssd=ssd,
        footprint_pages=int(ssd.logical_pages * 0.4),
        buffer_pages=buffer_pages,
        hotness_window=64,
    )


def write_heavy_trace(n=400, footprint=100):
    return [
        TraceRecord(i * 200.0, (i * 13) % footprint, 1, i % 4 != 0)
        for i in range(n)
    ]


def make_engine(name, system):
    if name == "queue":
        return SimulationEngine(system, warmup_fraction=0.0)
    return DesSimulationEngine(system, warmup_fraction=0.0, n_channels=4)


def reference_medium(engine_name, trace):
    """The uncrashed oracle: same trace, no cut, manager log kept."""
    config = small_config()
    manager = RecoveryManager(RECOVERY, config.ssd)
    system = build_system("flexlevel", config, recovery=manager)
    make_engine(engine_name, system).run(trace, "ref")
    return manager


# Seeded sweep: K crash points spread over the run span (the trace
# spans 80 ms; points avoid 0 and the tail where the run has drained).
CRASH_POINTS = [7_321.0, 14_900.0, 26_017.0, 39_500.0, 51_113.0, 63_777.0]


class TestCrashPointSweep:
    @pytest.mark.parametrize("engine_name", ["queue", "des"])
    def test_recovered_mapping_is_committed_prefix_of_reference(
        self, engine_name
    ):
        trace = write_heavy_trace()
        ref = reference_medium(engine_name, trace)
        for T in CRASH_POINTS:
            config = small_config()
            manager = RecoveryManager(RECOVERY, config.ssd)
            system = build_system("flexlevel", config, recovery=manager)
            result = make_engine(engine_name, system).run(
                trace, "t", crash_us=T
            )
            assert result.crashed and result.crash_us == T
            # recover() raises on remount divergence or a lost acked
            # write; the sweep passing at every point IS the invariant.
            outcome = recover(system, T, system_name="flexlevel")
            assert outcome.report.scan_matches_replay
            # Determinism makes the reference's durable prefix at T
            # byte-identical to the crashed run's recovered state.
            assert outcome.state.mapping() == ref.scan_at(T).mapping()
            assert outcome.state.versions() == ref.scan_at(T).versions()

    @pytest.mark.parametrize("engine_name", ["queue", "des"])
    def test_resumed_run_completes_the_trace(self, engine_name):
        trace = write_heavy_trace()
        run = run_with_crashes(
            "flexlevel",
            small_config(),
            trace,
            PowerConfig(enabled=True, at_us=26_017.0),
            recovery=RECOVERY,
            engine=engine_name,
        )
        assert run.crashes == 1
        assert not run.final.crashed
        assert run.final_system is not None
        assert run.final_system.ssd.recovery is not None
        report = run.reports[0]
        assert report.strategy == "journal"
        assert report.recovery_time_us > 0.0


class TestRateModeCycles:
    def test_repeated_cuts_recover_and_finish(self):
        run = run_with_crashes(
            "flexlevel",
            small_config(),
            write_heavy_trace(),
            PowerConfig(enabled=True, rate_per_s=60.0, seed=5, max_crashes=3),
            recovery=RECOVERY,
            engine="queue",
        )
        assert 1 <= run.crashes <= 3
        assert not run.final.crashed
        cuts = [c.result.crash_us for c in run.cycles if c.outcome is not None]
        assert cuts == sorted(cuts)

    def test_resume_false_stops_after_first_recovery(self):
        run = run_with_crashes(
            "flexlevel",
            small_config(),
            write_heavy_trace(),
            PowerConfig(enabled=True, at_us=26_017.0),
            recovery=RECOVERY,
            engine="queue",
            resume=False,
        )
        assert run.crashes == 1
        assert len(run.cycles) == 1
        assert run.final.crashed


class TestDeterminism:
    @pytest.mark.parametrize("engine_name", ["queue", "des"])
    def test_same_seed_same_artifact(self, engine_name):
        """The whole-run artifact — every crash point, every remount
        report, every fingerprint — is byte-stable under a fixed
        (trace, config, SPO seed)."""

        def one_run():
            return run_with_crashes(
                "flexlevel",
                small_config(),
                write_heavy_trace(),
                PowerConfig(
                    enabled=True, rate_per_s=40.0, seed=9, max_crashes=4
                ),
                recovery=RECOVERY,
                engine=engine_name,
            ).to_dict()

        a, b = one_run(), one_run()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["fingerprint"] == b["fingerprint"]

    def test_different_spo_seed_moves_the_cuts(self):
        def fp(seed):
            return run_with_crashes(
                "flexlevel",
                small_config(),
                write_heavy_trace(),
                PowerConfig(
                    enabled=True, rate_per_s=40.0, seed=seed, max_crashes=4
                ),
                recovery=RECOVERY,
                engine="queue",
            ).to_dict()["fingerprint"]

        assert fp(9) != fp(10)
