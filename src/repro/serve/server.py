"""The multi-tenant serving front-end over the DES engine.

:class:`QueuePairSource` is the live ingress the DES engine's
``run_source`` loop was built for: it owns every tenant's queue pair,
admission bucket and arrival stream, and each time the controller has a
free request slot it answers *which SQ head goes next and when* — the
QoS scheduler's decision, possibly future-dated to the moment the next
submission becomes eligible.

The flow of one request:

1. The tenant's seeded stream produces a submission at ``submit_us``
   (open loop: its own Poisson clock; closed loop: think time after its
   previous completion).
2. Admission control stamps it ``eligible_us`` (token-bucket shaping)
   and it enters the tenant's bounded SQ — or is rejected and counted
   if the SQ is full.
3. When a controller slot frees, the QoS scheduler picks one eligible
   SQ head; the request dispatches into the device simulation with
   ``t0 = submit_us``, so SQ wait shows up in the response time and in
   the ``queue_wait`` attribution cause.
4. On completion the response is posted to the tenant's CQ: SLO
   accounting, the per-tenant response histogram, and (closed loop)
   the next submission.

Back-pressure is the *dispatch window*: at most ``window`` requests may
be in flight inside the device.  Without it the controller would drain
every SQ instantly and scheduling would never matter; with it, overload
turns into SQ backlog that the scheduler — not arrival order — decides
how to serve.

Decision timing: each poll makes exactly one dispatch decision.  When
nothing is eligible *now*, the decision is made for the earliest
instant something becomes eligible; a completion landing inside that
gap releases its follow-up work at the next poll.  This one-decision
lookahead is deterministic and bounded by a single request.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.baselines.systems import StorageSystem
from repro.errors import ConfigurationError, SimulationError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.monitor import HealthMonitor, MonitorConfig
from repro.obs.timeseries import WindowedRecorder
from repro.obs.tracing import Tracer
from repro.serve.admission import TokenBucket
from repro.serve.qos import QosScheduler, make_scheduler
from repro.serve.queues import QueuePair, SubmittedRequest
from repro.serve.tenants import TenantSpec, TenantStream, spawn_streams
from repro.sim.des.engine import DesSimulationEngine
from repro.sim.des.ingress import PendingRequest, RequestSource
from repro.sim.results import DesSimulationResult, response_histogram

#: Fallback logical footprint when the system under test has none.
_DEFAULT_LOGICAL_PAGES = 65_536


class QueuePairSource(RequestSource):
    """Queue-pair ingress: SQ/CQ pairs, admission, QoS dispatch.

    Parameters
    ----------
    streams:
        One seeded :class:`~repro.serve.tenants.TenantStream` per
        tenant (``spawn_streams``).
    scheduler:
        The QoS discipline deciding which eligible SQ head a freed
        slot serves.
    window:
        Controller dispatch window — maximum requests in flight inside
        the device at once.
    admission_rate_per_s:
        Per-tenant token-bucket rate; ``None`` disables shaping.
    recorder:
        Optional windowed-telemetry sink; when set, the source emits
        per-tenant virtual-time series (``serve.tenant.t0.completions``,
        ``.slo_violations``, ``.sq_depth``) alongside the DES engine's
        device-level series.
    """

    def __init__(
        self,
        streams: list[TenantStream],
        scheduler: QosScheduler,
        window: int,
        admission_rate_per_s: float | None = None,
        recorder: WindowedRecorder | None = None,
    ):
        if not streams:
            raise ConfigurationError("queue-pair source needs tenants")
        if window < 1:
            raise ConfigurationError(f"dispatch window below 1: {window}")
        self.streams = streams
        self.scheduler = scheduler
        self.window = window
        self.recorder = recorder
        self.pairs: list[QueuePair] = [
            QueuePair.for_tenant(stream.spec) for stream in streams
        ]
        self.buckets: list[TokenBucket] = [
            TokenBucket(rate_per_s=admission_rate_per_s) for _ in streams
        ]
        self.response_hists: list[Histogram] = [
            response_histogram(f"serve.tenant.{s.spec.name}.response_us")
            for s in streams
        ]
        self._outstanding = 0
        self._emitted = 0
        self._inflight: dict[int, SubmittedRequest] = {}
        # Future submissions: (submit_us, tenant_id, seq).  Open-loop
        # tenants chain the next entry when the current one submits;
        # closed-loop tenants chain it from on_complete.
        self._submissions: list[tuple[float, int, int]] = []
        for stream in streams:
            if len(stream):
                first = stream.requests[0]
                heapq.heappush(
                    self._submissions, (first.gap_us, stream.spec.tenant_id, 0)
                )

    # --- RequestSource protocol -------------------------------------------------

    def next_request(self, now_us: float) -> PendingRequest | None:
        if self._outstanding >= self.window:
            return None
        t = now_us
        while True:
            self._drain_submissions(t)
            heads = [
                pair.sq.head
                for pair in self.pairs
                if pair.sq.head is not None and pair.sq.head.eligible_us <= t
            ]
            if heads:
                return self._dispatch(self.scheduler.select(heads, t), t)
            t_next = self._next_event_after(t)
            if t_next is None:
                return None
            t = t_next

    def on_complete(
        self, index: int, completion_us: float, response_us: float
    ) -> None:
        request = self._inflight.pop(index)
        self._outstanding -= 1
        tenant_id = request.tenant_id
        self.pairs[tenant_id].cq.post(request, completion_us, response_us)
        self.response_hists[tenant_id].observe(response_us)
        stream = self.streams[tenant_id]
        if self.recorder is not None:
            name = stream.spec.name
            self.recorder.add(f"serve.tenant.{name}.completions", completion_us)
            self.recorder.sample(
                f"serve.tenant.{name}.response_us", completion_us, response_us
            )
            if response_us > stream.spec.slo_us:
                self.recorder.add(
                    f"serve.tenant.{name}.slo_violations", completion_us
                )
        if stream.spec.closed_loop and request.seq + 1 < len(stream):
            think = stream.requests[request.seq + 1].gap_us
            heapq.heappush(
                self._submissions,
                (completion_us + think, tenant_id, request.seq + 1),
            )

    def on_abort(self, index: int) -> None:
        """A dispatched request died in flight (sudden power-off).

        The engine calls this instead of ``on_complete`` for every
        pending request when the run is cut: no CQ posting, no response
        sample, no closed-loop follow-up — the request moves to the
        tenant's ``aborted`` bucket so conservation still closes.
        """
        request = self._inflight.pop(index)
        self._outstanding -= 1
        self.pairs[request.tenant_id].sq.aborted += 1

    def abort_queued(self) -> int:
        """Drain every still-queued SQ entry into ``aborted`` buckets."""
        return sum(pair.sq.drain_aborted() for pair in self.pairs)

    @property
    def emitted(self) -> int:
        return self._emitted

    def advance_to(self, now_us: float) -> None:
        """Flush submissions due by ``now_us`` into their SQs.

        Draining is keyed purely on ``submit_us`` order, so doing it
        eagerly here (before the engine closes telemetry windows)
        instead of lazily at the next dispatch poll changes nothing —
        every entry still enters its SQ stamped with the same
        ``submit_us``, and dispatch decisions still happen at polls.
        It guarantees window-close hooks never see a submission
        arrive *behind* an already-closed window.
        """
        self._drain_submissions(now_us)

    # --- internals --------------------------------------------------------------

    def _drain_submissions(self, t: float) -> None:
        """Move every submission due by ``t`` into its tenant's SQ."""
        while self._submissions and self._submissions[0][0] <= t:
            submit_us, tenant_id, seq = heapq.heappop(self._submissions)
            stream = self.streams[tenant_id]
            spec = stream.spec
            req = stream.requests[seq]
            entry = SubmittedRequest(
                tenant_id=tenant_id,
                seq=seq,
                submit_us=submit_us,
                eligible_us=self.buckets[tenant_id].eligible_at(submit_us),
                deadline_us=submit_us + spec.slo_us,
                cost=float(req.n_pages),
                lpn=req.lpn,
                n_pages=req.n_pages,
                is_write=req.is_write,
            )
            admitted = self.pairs[tenant_id].sq.push(entry)
            if self.recorder is not None:
                if not admitted:
                    # A rejected submission burns the tenant's error
                    # budget exactly like an SLO violation — the burn
                    # rules need it as a windowed series, not just an
                    # end-of-run count.
                    self.recorder.add(
                        f"serve.tenant.{spec.name}.rejections", submit_us
                    )
                self.recorder.sample(
                    f"serve.tenant.{spec.name}.sq_depth",
                    submit_us,
                    len(self.pairs[tenant_id].sq),
                )
            # Open loop: the next submission rides the tenant's own
            # clock whether this one was admitted or rejected.
            if not spec.closed_loop and seq + 1 < len(stream):
                heapq.heappush(
                    self._submissions,
                    (
                        submit_us + stream.requests[seq + 1].gap_us,
                        tenant_id,
                        seq + 1,
                    ),
                )

    def _next_event_after(self, t: float) -> float | None:
        """The earliest future instant a head could become eligible."""
        candidates = []
        if self._submissions:
            candidates.append(self._submissions[0][0])
        for pair in self.pairs:
            head = pair.sq.head
            if head is not None and head.eligible_us > t:
                candidates.append(head.eligible_us)
        return min(candidates) if candidates else None

    def _dispatch(self, chosen: SubmittedRequest, t: float) -> PendingRequest:
        sq = self.pairs[chosen.tenant_id].sq
        assert sq.head is chosen
        sq.pop_head()
        self.scheduler.on_dispatch(chosen)
        self._outstanding += 1
        index = self._emitted
        self._emitted += 1
        self._inflight[index] = chosen
        stream = self.streams[chosen.tenant_id]
        return PendingRequest(
            record=stream.record_at(chosen.seq, t),
            index=index,
            t0_us=chosen.submit_us,
            attrs={
                "tenant": stream.spec.name,
                "tenant_id": chosen.tenant_id,
                "tseq": chosen.seq,
            },
        )

    def check_conservation(self, crashed: bool = False) -> None:
        """Every submission is accounted for once the run has drained.

        On a clean run every admitted submission must have completed
        and the ``aborted`` buckets must be empty.  On a crashed run
        (``crashed=True``, after :meth:`abort_queued`) the identity
        relaxes to ``submitted == rejected + completed + aborted`` —
        nothing is ever silently lost, it just lands in a different
        terminal bucket.
        """
        if self._outstanding or self._inflight:
            raise SimulationError(
                f"{self._outstanding} requests still in flight at teardown"
            )
        for pair in self.pairs:
            sq, cq = pair.sq, pair.cq
            if len(sq):
                raise SimulationError(
                    f"tenant {pair.spec.name} left {len(sq)} entries queued"
                )
            if not crashed and sq.aborted:
                raise SimulationError(
                    f"tenant {pair.spec.name} aborted {sq.aborted} "
                    "requests without a crash"
                )
            if sq.submitted != sq.rejected + cq.completed + sq.aborted:
                raise SimulationError(
                    f"tenant {pair.spec.name} lost submissions: "
                    f"{sq.submitted} != {sq.rejected} + {cq.completed} "
                    f"+ {sq.aborted}"
                )


@dataclass
class ServeResult:
    """One serving run: fleet rollup plus per-tenant accounting.

    ``sim`` is the underlying device-level DES result (channel
    utilization, retry tail, makespan); the serve-level view adds what
    the device cannot know — which tenant each response belonged to and
    how it fared against its SLO.
    """

    scheduler: str
    seed: int
    window: int
    admission_rate_per_s: float | None
    specs: list[TenantSpec]
    source: QueuePairSource
    sim: DesSimulationResult
    tracer: Tracer
    monitor: HealthMonitor | None = None

    fleet_hist: Histogram = field(init=False)

    def __post_init__(self) -> None:
        # The fleet distribution is the *exact* union of the per-tenant
        # histograms — identical layouts, so Histogram.merge is lossless.
        self.fleet_hist = response_histogram("serve.fleet.response_us")
        for hist in self.source.response_hists:
            self.fleet_hist.merge(hist)

    # --- per-tenant views -------------------------------------------------------

    def tenant_quantile(self, tenant_id: int, q: float) -> float:
        return self.source.response_hists[tenant_id].quantile(q)

    def tenant_summary(self, tenant_id: int) -> dict[str, Any]:
        spec = self.specs[tenant_id]
        pair = self.source.pairs[tenant_id]
        hist = self.source.response_hists[tenant_id]
        completed = pair.cq.completed
        return {
            "tenant": spec.name,
            "workload": spec.workload,
            "rate_x": spec.rate_x,
            "weight": spec.weight,
            "closed_loop": spec.closed_loop,
            "slo_us": spec.slo_us,
            "submitted": pair.sq.submitted,
            "rejected": pair.sq.rejected,
            "completed": completed,
            "aborted": pair.sq.aborted,
            "sq_depth_high_water": pair.sq.depth_high_water,
            "slo_violations": pair.cq.slo_violations,
            "slo_violation_rate": (
                pair.cq.slo_violations / completed if completed else 0.0
            ),
            "mean_response_us": hist.mean(),
            "p50_response_us": hist.quantile(50),
            "p95_response_us": hist.quantile(95),
            "p99_response_us": hist.quantile(99),
            "p999_response_us": hist.quantile(99.9),
            "max_response_us": hist.max(),
        }

    def fleet_summary(self) -> dict[str, Any]:
        submitted = sum(p.sq.submitted for p in self.source.pairs)
        rejected = sum(p.sq.rejected for p in self.source.pairs)
        completed = sum(p.cq.completed for p in self.source.pairs)
        aborted = sum(p.sq.aborted for p in self.source.pairs)
        violations = sum(p.cq.slo_violations for p in self.source.pairs)
        return {
            "n_tenants": len(self.specs),
            "scheduler": self.scheduler,
            "crashed": self.sim.crashed,
            "submitted": submitted,
            "rejected": rejected,
            "completed": completed,
            "aborted": aborted,
            "slo_violations": violations,
            "slo_violation_rate": violations / completed if completed else 0.0,
            "makespan_us": self.sim.makespan_us,
            "mean_response_us": self.fleet_hist.mean(),
            "p50_response_us": self.fleet_hist.quantile(50),
            "p95_response_us": self.fleet_hist.quantile(95),
            "p99_response_us": self.fleet_hist.quantile(99),
            "p999_response_us": self.fleet_hist.quantile(99.9),
            "max_response_us": self.fleet_hist.max(),
        }


class ServeEngine:
    """Wires tenants, queue pairs, QoS and the DES device together.

    Parameters
    ----------
    system:
        Storage system under test (:func:`repro.baselines.build_system`).
    specs:
        The tenant population (:func:`repro.serve.tenants.parse_mix`).
    seed:
        Root seed; each tenant stream spawns an independent child.
    scheduler:
        QoS discipline name (``fifo`` / ``wfq`` / ``edf``).
    n_channels:
        Device channels (also the default basis of the window).
    window:
        Controller dispatch window; defaults to ``2 * n_channels``.
    admission_rate_per_s:
        Optional per-tenant token-bucket admission rate.
    registry / recorder:
        Optional observability sinks, passed through to the DES engine;
        the serve layer adds per-tenant counters to the registry.
    channel_telemetry:
        Optional :class:`repro.obs.channel.ChannelTelemetry`, passed
        through to the DES engine.  Requests carry their tenant name,
        so the artifact's per-tenant flash-channel mix shows which
        tenants land on which channels.
    """

    def __init__(
        self,
        system: StorageSystem,
        specs: list[TenantSpec],
        seed: int = 0,
        scheduler: str = "fifo",
        n_channels: int = 4,
        window: int | None = None,
        admission_rate_per_s: float | None = None,
        registry: MetricsRegistry | None = None,
        recorder: WindowedRecorder | None = None,
        monitor_config: MonitorConfig | None = None,
        channel_telemetry=None,
    ):
        if monitor_config is not None and recorder is None:
            raise ConfigurationError(
                "online monitoring requires a windowed recorder"
            )
        if window is None:
            window = 2 * n_channels
        self.system = system
        self.specs = specs
        self.seed = seed
        self.scheduler_name = scheduler
        self.n_channels = n_channels
        self.window = window
        self.admission_rate_per_s = admission_rate_per_s
        self.registry = registry
        self.recorder = recorder
        self.monitor_config = monitor_config
        self.channel_telemetry = channel_telemetry
        logical_pages = system.config.footprint_pages or _DEFAULT_LOGICAL_PAGES
        self.streams = spawn_streams(specs, seed, logical_pages)

    def run(self, crash_us: float | None = None) -> ServeResult:
        source = QueuePairSource(
            self.streams,
            make_scheduler(self.scheduler_name, self.specs),
            self.window,
            admission_rate_per_s=self.admission_rate_per_s,
            recorder=self.recorder,
        )
        # Retain every request so per-tenant blame tables are complete
        # (fractions then sum to exactly 1.0 per band, per tenant).
        tracer = Tracer(sample_every=1, keep_slowest=0)
        monitor = None
        if self.monitor_config is not None:
            monitor = HealthMonitor(
                self.recorder,
                registry=self.registry,
                tracer=tracer,
                tenants=[spec.name for spec in self.specs],
                config=self.monitor_config,
            ).attach()
        engine = DesSimulationEngine(
            self.system,
            warmup_fraction=0.0,
            n_channels=self.n_channels,
            registry=self.registry,
            tracer=tracer,
            recorder=self.recorder,
            channel_telemetry=self.channel_telemetry,
        )
        sim = engine.run_source(
            source, workload_name="multi_tenant", crash_us=crash_us
        )
        if sim.crashed:
            # Graceful drain after the cut: everything still queued in
            # an SQ moves to the aborted bucket so the crashed-mode
            # conservation identity (submitted == rejected + completed
            # + aborted) closes exactly.
            source.abort_queued()
        source.check_conservation(crashed=sim.crashed)
        result = ServeResult(
            scheduler=self.scheduler_name,
            seed=self.seed,
            window=self.window,
            admission_rate_per_s=self.admission_rate_per_s,
            specs=self.specs,
            source=source,
            sim=sim,
            tracer=tracer,
            monitor=monitor,
        )
        if self.registry is not None:
            self._publish_metrics(result)
        return result

    def _publish_metrics(self, result: ServeResult) -> None:
        registry = self.registry
        for spec, pair, hist in zip(
            self.specs, result.source.pairs, result.source.response_hists
        ):
            prefix = f"serve.tenant.{spec.name}"
            registry.counter(f"{prefix}.submitted").inc(pair.sq.submitted)
            registry.counter(f"{prefix}.rejected").inc(pair.sq.rejected)
            registry.counter(f"{prefix}.completed").inc(pair.cq.completed)
            registry.counter(f"{prefix}.slo_violations").inc(
                pair.cq.slo_violations
            )
            registry.register(f"{prefix}.response_us", hist)
        registry.register("serve.fleet.response_us", result.fleet_hist)
