"""Multi-tenant serving front-end: queue pairs, QoS, SLO accounting.

The serving stack, bottom to top:

* :mod:`repro.serve.tenants` — tenant specs, mix parsing, and seeded
  per-tenant arrival streams (independent spawned RNG streams).
* :mod:`repro.serve.queues` — bounded NVMe-style submission/completion
  queue pairs.
* :mod:`repro.serve.admission` — deterministic token-bucket admission.
* :mod:`repro.serve.qos` — FIFO / weighted-fair / earliest-deadline
  schedulers over the SQ heads.
* :mod:`repro.serve.server` — the :class:`QueuePairSource` ingress and
  the :class:`ServeEngine` that drives the DES device from it.
* :mod:`repro.serve.slo` — per-tenant blame tables and the
  byte-deterministic serve report artifact.
"""

from repro.serve.admission import TokenBucket
from repro.serve.qos import (
    SCHEDULER_NAMES,
    DeadlineScheduler,
    FifoScheduler,
    QosScheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from repro.serve.queues import (
    CompletionQueue,
    QueuePair,
    SubmissionQueue,
    SubmittedRequest,
)
from repro.serve.server import QueuePairSource, ServeEngine, ServeResult
from repro.serve.slo import (
    build_artifact,
    dump_artifact,
    per_tenant_reports,
    render_markdown,
)
from repro.serve.tenants import (
    DEFAULT_SLO_US,
    DEFAULT_SQ_DEPTH,
    TenantRequest,
    TenantSpec,
    TenantStream,
    parse_mix,
    spawn_streams,
)

__all__ = [
    "DEFAULT_SLO_US",
    "DEFAULT_SQ_DEPTH",
    "SCHEDULER_NAMES",
    "CompletionQueue",
    "DeadlineScheduler",
    "FifoScheduler",
    "QosScheduler",
    "QueuePair",
    "QueuePairSource",
    "ServeEngine",
    "ServeResult",
    "SubmissionQueue",
    "SubmittedRequest",
    "TenantRequest",
    "TenantSpec",
    "TenantStream",
    "TokenBucket",
    "WeightedFairScheduler",
    "build_artifact",
    "dump_artifact",
    "make_scheduler",
    "parse_mix",
    "per_tenant_reports",
    "render_markdown",
    "spawn_streams",
]
