"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
report
    Generate the full reproduction report (markdown).
simulate
    Run the four storage systems on one paper workload and print the
    comparison table.
profile
    Profile a CSV trace file into workload statistics.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import main as report_main

    forwarded = []
    if args.fast:
        forwarded.append("--fast")
    if args.output:
        forwarded.extend(["--output", args.output])
    return report_main(forwarded)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.baselines import SystemConfig, build_system, system_names
    from repro.core.level_adjust import LevelAdjustPolicy
    from repro.ftl import SsdConfig
    from repro.sim import DesSimulationEngine, ReadRetryModel, SimulationEngine
    from repro.traces import make_workload, workload_names

    if args.workload not in workload_names():
        print(f"unknown workload {args.workload!r}; choose from {workload_names()}")
        return 2
    ssd_config = SsdConfig(
        n_blocks=args.blocks, pages_per_block=64, initial_pe_cycles=args.pe
    )
    workload = make_workload(args.workload, ssd_config.logical_pages)
    trace = workload.generate(args.requests, seed=args.seed)
    policy = LevelAdjustPolicy()
    n_channels = args.channels
    if n_channels is None:
        n_channels = 4 if args.engine == "des" else 1
    rows = []
    for name in system_names():
        config = SystemConfig(
            ssd=ssd_config,
            footprint_pages=workload.footprint_pages,
            buffer_pages=512,
            # Scale the hotness window down for short runs so AccessEval
            # can warm up within the trace.
            hotness_window=max(64, min(4096, args.requests // 8)),
        )
        system = build_system(name, config, level_adjust=policy)
        if args.engine == "des":
            engine = DesSimulationEngine(
                system,
                warmup_fraction=0.25,
                n_channels=n_channels,
                retry_model=None if args.no_retry else ReadRetryModel(),
            )
        else:
            engine = SimulationEngine(
                system, warmup_fraction=0.25, n_channels=n_channels
            )
        result = engine.run(trace, args.workload)
        row = [
            name,
            result.mean_response_us(),
            result.stats["mean_extra_levels"],
            result.stats["write_amplification"],
            int(result.stats["erase_blocks"]),
        ]
        if args.engine == "des":
            percentiles = result.percentiles()
            utilization = result.channel_utilization()
            row[2:2] = [
                percentiles["p50_response_us"],
                percentiles["p95_response_us"],
                percentiles["p99_response_us"],
                sum(utilization) / len(utilization),
            ]
        rows.append(tuple(row))
    headers = ["system", "mean response (us)"]
    if args.engine == "des":
        headers += ["p50", "p95", "p99", "mean util"]
    headers += ["extra levels", "WA", "erases"]
    print(format_table(headers, rows))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.traces import profile_trace, read_trace_csv

    profile = profile_trace(read_trace_csv(args.trace))
    for key, value in profile.summary().items():
        print(f"{key:22s} {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="generate the reproduction report")
    report.add_argument("--fast", action="store_true")
    report.add_argument("--output", default=None)
    report.set_defaults(handler=_cmd_report)

    simulate = commands.add_parser("simulate", help="compare the four systems")
    simulate.add_argument("workload", nargs="?", default="fin-2")
    simulate.add_argument("--requests", type=int, default=30_000)
    simulate.add_argument("--blocks", type=int, default=256)
    simulate.add_argument("--pe", type=float, default=6000.0)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--engine",
        choices=("queue", "des"),
        default="queue",
        help="queue: legacy single-queue model; des: discrete-event "
        "multi-channel model with read retry and percentile metrics",
    )
    simulate.add_argument(
        "--channels",
        type=int,
        default=None,
        help="flash channels (default: 1 for queue, 4 for des)",
    )
    simulate.add_argument(
        "--no-retry",
        action="store_true",
        help="disable the DES read-retry model",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    profile = commands.add_parser("profile", help="profile a CSV trace")
    profile.add_argument("trace")
    profile.set_defaults(handler=_cmd_profile)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
