"""Change-point alert rules: which series, which signal, which detector.

A rule binds three things:

* a **series selector** over the :class:`WindowedRecorder` namespace —
  one dotted name (``sim.read.retry_rounds``), a ``+``-joined union
  whose per-window values are summed (``ftl.scrub.refreshed_pages+
  ftl.bbt.retired``), or a ``*`` glob expanded against the recorder's
  sorted series list (``sim.channel.*.gc_us``);
* a **signal** reducing each window's :class:`WindowCell` to one
  scalar: ``sum`` | ``mean`` | ``max`` | ``min`` | ``last`` |
  ``count`` | ``rate`` (sum per simulated second);
* a **detector** from :mod:`repro.obs.monitor.detectors` with its
  parameters.

The compact string grammar (CLI ``--rule``, documented in
docs/MONITORING.md)::

    name = detector(series, signal [, key=value ...])

e.g. ``retry_rate=cusum(sim.read.retry_rounds,rate,k=0.5,h=8)``.
Unpopulated windows reduce to 0.0 — absence of arrivals/retries is
itself a signal (a stall looks like a drop, a burst like a step).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.monitor.detectors import (
    DETECTOR_KINDS,
    Alarm,
    make_detector,
)
from repro.obs.timeseries import WindowCell, WindowedRecorder

SIGNALS = ("sum", "mean", "max", "min", "last", "count", "rate")

_RULE_RE = re.compile(
    r"^(?P<name>[a-z0-9_]+)=(?P<kind>[a-z_]+)\((?P<body>[^)]*)\)$"
)


def _reduce(cell: WindowCell | None, signal: str, window_us: float) -> float:
    """One window cell → one scalar; unpopulated windows read as 0."""
    if cell is None or cell.n == 0:
        return 0.0
    if signal == "sum":
        return cell.sum
    if signal == "mean":
        return cell.mean()
    if signal == "max":
        return cell.max
    if signal == "min":
        return cell.min
    if signal == "last":
        return cell.last
    if signal == "count":
        return float(cell.n)
    if signal == "rate":
        return cell.sum / (window_us / 1e6)
    raise ConfigurationError(
        f"unknown signal {signal!r}; choose from {SIGNALS}"
    )


@dataclass
class ChangePointRule:
    """One detector instance bound to a series selector and signal.

    ``detector_params`` is kept verbatim so the rule serialises into
    the artifact exactly as configured (reproducibility of the alert
    stream includes reproducibility of the rules that produced it).
    """

    name: str
    series: str
    signal: str
    detector_kind: str
    detector_params: dict[str, float] = field(default_factory=dict)
    #: What an unpopulated window means: ``"zero"`` feeds 0.0 (counter
    #: semantics — no events happened), ``"skip"`` feeds nothing
    #: (gauge semantics — nothing was measured; latency windows with
    #: no traffic would otherwise poison the reference with zeros and
    #: make any traffic look like a shift).
    empty: str = "zero"

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[a-z0-9_]+", self.name):
            raise ConfigurationError(
                f"rule name {self.name!r} must match [a-z0-9_]+"
            )
        if self.signal not in SIGNALS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown signal {self.signal!r}; "
                f"choose from {SIGNALS}"
            )
        if self.empty not in ("zero", "skip"):
            raise ConfigurationError(
                f"rule {self.name!r}: empty policy {self.empty!r} "
                "must be 'zero' or 'skip'"
            )
        if self.detector_kind not in DETECTOR_KINDS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown detector "
                f"{self.detector_kind!r}; choose from {DETECTOR_KINDS}"
            )
        self._detector = make_detector(
            self.detector_kind, **self.detector_params
        )
        self._terms = [t.strip() for t in self.series.split("+")]
        if not all(self._terms):
            raise ConfigurationError(
                f"rule {self.name!r}: empty term in series {self.series!r}"
            )
        # Glob patterns expand lazily against the live recorder because
        # series appear as the run discovers them (per-channel names).
        self._resolved: list[str] | None = (
            None if any("*" in t for t in self._terms) else list(self._terms)
        )

    def _expand(self, recorder: WindowedRecorder) -> list[str]:
        if self._resolved is not None and not any(
            "*" in t for t in self._terms
        ):
            return self._resolved
        names = recorder.series_names()
        out: list[str] = []
        for term in self._terms:
            if "*" in term:
                out.extend(n for n in names if fnmatchcase(n, term))
            else:
                out.append(term)
        return out

    def value(self, recorder: WindowedRecorder, index: int) -> float:
        """The rule's scalar for one closed window (selector-summed)."""
        return sum(
            _reduce(recorder.cell(name, index), self.signal, recorder.window_us)
            for name in self._expand(recorder)
        )

    def observe(self, recorder: WindowedRecorder, index: int) -> Alarm | None:
        """Feed the closed window into the detector."""
        if self.empty == "skip" and not any(
            (cell := recorder.cell(name, index)) is not None and cell.n
            for name in self._expand(recorder)
        ):
            return None
        return self._detector.update(self.value(recorder, index))

    def state(self) -> dict[str, Any]:
        return {
            "series": self.series,
            "signal": self.signal,
            **self._detector.state(),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "series": self.series,
            "signal": self.signal,
            "detector": self.detector_kind,
            "params": dict(sorted(self.detector_params.items())),
            "empty": self.empty,
        }


def parse_rule(spec: str) -> ChangePointRule:
    """Parse ``name=detector(series,signal[,key=value...])``.

    >>> rule = parse_rule("retry=cusum(sim.read.retry_rounds,rate,h=6)")
    >>> (rule.name, rule.detector_kind, rule.detector_params["h"])
    ('retry', 'cusum', 6.0)
    """
    match = _RULE_RE.match(spec.strip())
    if match is None:
        raise ConfigurationError(
            f"malformed rule {spec!r}; expected "
            "name=detector(series,signal[,key=value...])"
        )
    body = [part.strip() for part in match.group("body").split(",")]
    if len(body) < 2:
        raise ConfigurationError(
            f"rule {spec!r} needs at least (series, signal)"
        )
    series, signal = body[0], body[1]
    params: dict[str, float] = {}
    empty = None
    for part in body[2:]:
        if "=" not in part:
            raise ConfigurationError(
                f"rule {spec!r}: malformed parameter {part!r} (want k=v)"
            )
        key, _, raw = part.partition("=")
        key, raw = key.strip(), raw.strip()
        if key == "empty":
            empty = raw
            continue
        try:
            value = float(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"rule {spec!r}: non-numeric value for {key!r}: {raw!r}"
            ) from exc
        params[key] = int(value) if key == "warmup" else value
    kwargs: dict[str, Any] = {}
    if empty is not None:
        kwargs["empty"] = empty
    return ChangePointRule(
        name=match.group("name"),
        series=series,
        signal=signal,
        detector_kind=match.group("kind"),
        detector_params=params,
        **kwargs,
    )


def default_rules(warmup: int = 8) -> list[ChangePointRule]:
    """The stock rule set: FlexLevel's wear-drift signals.

    Each is a series the paper predicts moves with P/E wear and
    retention age — latency level and tail, sensing-round (retry)
    rate, uncorrectable reads, GC pressure, and the scrub/retire
    activity that marks media giving out.
    """

    def cusum(name: str, series: str, signal: str, empty="zero", **kw: float):
        kw.setdefault("warmup", warmup)
        return ChangePointRule(name, series, signal, "cusum", kw, empty=empty)

    def ph(name: str, series: str, signal: str, empty="zero", **kw: float):
        kw.setdefault("warmup", warmup)
        return ChangePointRule(
            name, series, signal, "page_hinkley", kw, empty=empty
        )

    return [
        cusum(
            "latency_mean",
            "sim.response_us",
            "mean",
            empty="skip",
            k=1.0,
            h=16.0,
        ),
        # Window max is the tail proxy available from WindowCell
        # aggregates (see docs/MONITORING.md on p99 vs window-max).
        cusum(
            "latency_tail",
            "sim.response_us",
            "max",
            empty="skip",
            k=1.0,
            h=16.0,
        ),
        cusum("retry_rate", "sim.read.retry_rounds", "rate", k=1.0, h=12.0),
        cusum("uncorrectable", "sim.uncorrectable.reads", "sum", k=0.25, h=4.0),
        ph("gc_busy", "sim.channel.*.gc_us", "sum", delta=0.5, lam=18.0),
        ph(
            "media_decay",
            "ftl.scrub.refreshed_pages+ftl.bbt.retired",
            "sum",
            delta=0.25,
            lam=12.0,
        ),
        cusum(
            "degraded",
            "sim.degraded.read_only",
            "max",
            empty="skip",
            k=0.1,
            h=2.0,
        ),
        # Sudden-power-off recoveries: run_with_crashes stamps one
        # ftl.recovery.events observation at each cut, so a single
        # recovery trips the rule (crash-free runs never populate the
        # series and the zero-fed CUSUM stays silent).
        cusum("recovery", "ftl.recovery.events", "count", k=0.25, h=0.5),
        # Media telemetry (repro.obs.channel): populated only when a
        # ChannelTelemetry is attached, so telemetry-less runs feed the
        # zero-fed CUSUMs nothing and alert counts stay pinned.
        cusum("ber_drift", "channel.observed_errors", "mean", k=1.0, h=16.0),
        cusum(
            "sensing_escalation",
            "channel.sensing.escalations",
            "rate",
            k=1.0,
            h=12.0,
        ),
    ]
