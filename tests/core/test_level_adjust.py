"""Tests for the LevelAdjust policy (BER / sensing oracle)."""

import pytest

from repro.core.level_adjust import CellMode, LevelAdjustPolicy
from repro.errors import ConfigurationError


class TestPolicy:
    def test_reduced_mode_below_normal_ber(self, shared_policy):
        normal = shared_policy.ber(CellMode.NORMAL, 6000, 720)
        reduced = shared_policy.ber(CellMode.REDUCED, 6000, 720)
        assert reduced < normal

    def test_reduced_mode_needs_no_extra_levels(self, shared_policy):
        """The FlexLevel design point: NUNMA 3 keeps the reduced-state
        BER below the 4e-3 extra-sensing trigger (paper §6.1)."""
        for pe in (4000, 5000, 6000):
            for age in (24, 168, 720):
                assert shared_policy.extra_levels(CellMode.REDUCED, pe, age) == 0

    def test_normal_mode_needs_levels_when_old(self, shared_policy):
        assert shared_policy.extra_levels(CellMode.NORMAL, 6000, 720) > 0

    def test_fresh_normal_page_needs_none(self, shared_policy):
        assert shared_policy.extra_levels(CellMode.NORMAL, 6000, 0) == 0

    def test_should_reduce_tracks_normal_levels(self, shared_policy):
        assert shared_policy.should_reduce(6000, 720)
        assert not shared_policy.should_reduce(1000, 1)

    def test_reduction_benefit_non_negative(self, shared_policy):
        for pe in (2000, 6000):
            for age in (0, 720):
                assert shared_policy.reduction_benefit(pe, age) >= 0

    def test_ber_monotone_in_age(self, shared_policy):
        values = [
            shared_policy.ber(CellMode.NORMAL, 5000, age) for age in (1, 48, 720)
        ]
        assert values == sorted(values)

    def test_caching_stability(self, shared_policy):
        first = shared_policy.ber(CellMode.NORMAL, 5000, 100)
        second = shared_policy.ber(CellMode.NORMAL, 5000, 100)
        assert first == second

    def test_age_snapping(self, shared_policy):
        """Ages snap to the cache grid: nearby ages share an answer."""
        a = shared_policy.ber(CellMode.NORMAL, 5000, 24.0)
        b = shared_policy.ber(CellMode.NORMAL, 5000, 25.0)
        assert a == b

    def test_pe_bucketing(self, shared_policy):
        a = shared_policy.ber(CellMode.NORMAL, 5000, 24.0)
        b = shared_policy.ber(CellMode.NORMAL, 5100, 24.0)
        assert a == b

    def test_rejects_negative_inputs(self, shared_policy):
        with pytest.raises(ConfigurationError):
            shared_policy.ber(CellMode.NORMAL, -1, 24)
        with pytest.raises(ConfigurationError):
            shared_policy.ber(CellMode.NORMAL, 1000, -5)

    def test_rejects_bad_grid(self):
        with pytest.raises(ConfigurationError):
            LevelAdjustPolicy(age_grid_hours=(10.0, 5.0))
        with pytest.raises(ConfigurationError):
            LevelAdjustPolicy(pe_bucket=0)
