"""Trace-driven simulation engines and result aggregation.

Two engines share the result types:

* :class:`SimulationEngine` — the legacy single-queue model (fast,
  means-oriented).
* :class:`~repro.sim.des.DesSimulationEngine` — the discrete-event
  multi-channel model with read retry (tail-latency-oriented).
"""

from repro.sim.engine import SimulationEngine
from repro.sim.results import (
    DEFAULT_SAMPLE_CAP,
    DesSimulationResult,
    SimulationResult,
)
from repro.sim.des import (
    DesSimulationEngine,
    ReadRetryConfig,
    ReadRetryModel,
    RetryOutcome,
)
from repro.sim.crash import (
    CrashCycle,
    CrashRunResult,
    RecoveryOutcome,
    recover,
    run_with_crashes,
)

__all__ = [
    "DEFAULT_SAMPLE_CAP",
    "SimulationEngine",
    "SimulationResult",
    "DesSimulationEngine",
    "DesSimulationResult",
    "ReadRetryConfig",
    "ReadRetryModel",
    "RetryOutcome",
    "CrashCycle",
    "CrashRunResult",
    "RecoveryOutcome",
    "recover",
    "run_with_crashes",
]
