"""SSD lifetime accounting (paper Fig. 7c).

Lifetime is the host-write volume the drive sustains before its blocks
exhaust the rated P/E budget; it is inversely proportional to the erase
rate per unit of host work.  FlexLevel's migrations add erases, but the
paper's accounting notes the scheme only activates once the BER is high
enough to demand extra sensing levels — beyond ~4000 P/E (Table 5) —
so the erase overhead only applies to the tail of the device's life:

    lifetime_ratio = (activation + (budget - activation) / (1 + oh)) / budget

where ``oh`` is the relative erase-count increase measured while the
scheme is active.  With the paper's 13 % average erase increase,
activation at 4000 and a 10000-cycle budget this yields ~7 % lifetime
reduction, matching Fig. 7(c)'s ~6 % average.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def lifetime_ratio(
    erase_overhead: float,
    activation_pe: float = 4000.0,
    pe_budget: float = 10000.0,
) -> float:
    """Scheme lifetime relative to the baseline (1.0 = unchanged).

    Parameters
    ----------
    erase_overhead:
        Relative erase-count increase while the scheme is active, e.g.
        0.13 for 13 % more erases.
    activation_pe:
        P/E count at which the scheme starts operating (the first point
        where extra sensing levels appear, 4000 in Table 5).
    pe_budget:
        Rated endurance in P/E cycles.
    """
    if erase_overhead < 0:
        raise ConfigurationError(f"negative erase overhead: {erase_overhead}")
    if pe_budget <= 0:
        raise ConfigurationError(f"non-positive P/E budget: {pe_budget}")
    if not 0 <= activation_pe <= pe_budget:
        raise ConfigurationError(
            f"activation {activation_pe} outside [0, {pe_budget}]"
        )
    active_span = pe_budget - activation_pe
    effective = activation_pe + active_span / (1.0 + erase_overhead)
    return effective / pe_budget
