"""Ablation: the AccessEval Lf x Lsensing rule vs naive policies.

The paper picks N = M = 2 with the threshold at the top score.  This
bench compares that rule against promote-everything-old (ignore read
frequency) and promote-all-hot (ignore sensing cost) on fin-2: the
combined rule should promote far less than promote-everything while
keeping most of the sensing-level reduction.
"""

from conftest import BENCH_SEED, QUICK, write_table

from repro.analysis.experiments import SystemExperimentConfig
from repro.baselines.systems import SystemConfig, build_system
from repro.core.hlo import OverheadRule
from repro.sim.engine import SimulationEngine
from repro.traces.workloads import make_workload

N_REQUESTS = 4_000 if QUICK else 20_000


def _run_variants(shared_policy):
    config = SystemExperimentConfig(
        n_blocks=256, n_requests=N_REQUESTS, seed=BENCH_SEED
    )
    ssd_config = config.ssd_config()
    workload = make_workload("fin-2", ssd_config.logical_pages)
    trace = workload.generate(config.n_requests, seed=BENCH_SEED)
    variants = {
        # the paper's rule: hot AND expensive
        "lf-x-lsensing": dict(freq_levels=2, sensing_buckets=2),
        # expensive alone qualifies (threshold 2 reachable with Lf = 1)
        "any-old-page": dict(freq_levels=2, sensing_buckets=2, threshold=2),
    }
    out = {}
    for name, rule_kwargs in variants.items():
        system_config = SystemConfig(
            ssd=ssd_config,
            footprint_pages=workload.footprint_pages,
            buffer_pages=config.buffer_pages,
            freq_levels=rule_kwargs["freq_levels"],
            sensing_buckets=rule_kwargs["sensing_buckets"],
        )
        system = build_system("flexlevel", system_config, level_adjust=shared_policy)
        if "threshold" in rule_kwargs:
            system.access_eval.identifier.rule = OverheadRule(
                freq_levels=rule_kwargs["freq_levels"],
                sensing_buckets=rule_kwargs["sensing_buckets"],
                max_extra_levels=shared_policy.sensing.max_levels,
                threshold=rule_kwargs["threshold"],
            )
        result = SimulationEngine(system, warmup_fraction=0.25).run(trace, "fin-2")
        out[name] = {
            "mean_response_us": result.mean_response_us(),
            "mean_extra_levels": result.stats["mean_extra_levels"],
            "promotions": result.stats["promotions"],
            "demotions": result.stats["demotions"],
            "migration_programs": result.stats["migration_program_pages"],
        }
    return out


def test_ablation_hlo_rule(benchmark, results_dir, shared_policy, bench_case):
    bench_case.configure(n_requests=N_REQUESTS, workload="fin-2")
    results = benchmark.pedantic(
        _run_variants, args=(shared_policy,), rounds=1, iterations=1
    )

    lines = ["policy         response (us)  extra levels  promotions  migr. programs"]
    for name, row in results.items():
        lines.append(
            f"{name:13s}  {row['mean_response_us']:13.1f}  "
            f"{row['mean_extra_levels']:12.2f}  {row['promotions']:10.0f}  "
            f"{row['migration_programs']:14.0f}"
        )
    lines.append("")
    lines.append("the paper's combined rule needs fewer migrations per unit of "
                 "sensing-level reduction than promoting every old page")
    write_table(results_dir, "ablation_hlo_rule", lines)

    combined = results["lf-x-lsensing"]
    greedy = results["any-old-page"]
    bench_case.emit(
        {
            "combined_mean_response_us": combined["mean_response_us"],
            "combined_promotions": combined["promotions"],
            "combined_migration_programs": combined["migration_programs"],
            "greedy_promotions": greedy["promotions"],
            "promotion_saving": greedy["promotions"]
            / max(combined["promotions"], 1.0),
        },
        specs={"promotion_saving": {"direction": "higher"}},
        table="ablation_hlo_rule",
    )
    if not QUICK:
        assert combined["promotions"] < greedy["promotions"]
        assert combined["migration_programs"] < greedy["migration_programs"]
