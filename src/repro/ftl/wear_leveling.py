"""Wear leveling for the SSD substrate.

Greedy garbage collection alone lets erase counts diverge: blocks
holding cold data are never reclaimed while hot blocks cycle
constantly, and the drive dies when its hottest blocks do.  The classic
mitigation (implemented by FlashSim and every shipping FTL) is *static*
wear leveling: when the erase-count spread exceeds a threshold, migrate
a cold (fully-valid, rarely-erased) block's contents onto a hot block
so the cold block joins the rotation.

:class:`WearLeveler` is a policy object the :class:`~repro.ftl.ssd.Ssd`
consults after each garbage collection; it is deliberately stateless
beyond its thresholds so it can be swapped or disabled per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WearLeveler:
    """Static wear-leveling policy.

    Parameters
    ----------
    spread_threshold:
        Trigger when ``max(erase) - min(erase)`` among *used* blocks
        reaches this value.
    check_interval:
        Only evaluate the trigger every this-many garbage collections
        (the scan is linear in the block count).
    """

    spread_threshold: int = 8
    check_interval: int = 4

    def __post_init__(self) -> None:
        if self.spread_threshold < 1:
            raise ConfigurationError("spread threshold must be >= 1")
        if self.check_interval < 1:
            raise ConfigurationError("check interval must be >= 1")

    def should_check(self, gc_runs: int) -> bool:
        """True when this GC run should evaluate the wear spread."""
        return gc_runs % self.check_interval == 0

    def pick_cold_block(
        self,
        erase_counts: np.ndarray,
        valid_counts: np.ndarray,
        usable_counts: np.ndarray,
        excluded: set[int],
    ) -> int | None:
        """The coldest candidate block to rotate, or None.

        A candidate is a fully-written block that is not excluded (free
        or currently active) whose erase count trails the maximum by at
        least the spread threshold.  Among candidates the least-erased,
        fullest block is chosen — moving it frees the most-stuck data.
        """
        n_blocks = erase_counts.shape[0]
        candidates = []
        max_erase = int(erase_counts.max())
        for block in range(n_blocks):
            if block in excluded:
                continue
            if valid_counts[block] < usable_counts[block]:
                continue  # not fully valid: normal GC will get to it
            if max_erase - int(erase_counts[block]) < self.spread_threshold:
                continue
            candidates.append(block)
        if not candidates:
            return None
        return min(candidates, key=lambda b: (int(erase_counts[b]), -int(valid_counts[b])))


def erase_spread(erase_counts: np.ndarray) -> int:
    """Max minus min per-block erase count (the wear-leveling metric)."""
    counts = np.asarray(erase_counts)
    if counts.size == 0:
        raise ConfigurationError("no blocks")
    return int(counts.max() - counts.min())
