"""FlexLevel's core contribution.

* :mod:`repro.core.reduce_code` — the ReduceCode 3-bits-in-2-cells
  mapping (paper Table 1),
* :mod:`repro.core.programming` — the two-step reduced-state program
  algorithm (paper Table 2),
* :mod:`repro.core.bitline` — normal and ReduceCode wordline/bitline
  structures (paper Figs. 1a and 3),
* :mod:`repro.core.nunma` — non-uniform noise-margin plans (paper §4.2),
* :mod:`repro.core.level_adjust` — the LevelAdjust state policy,
* :mod:`repro.core.hotness` — multiple-Bloom-filter read-frequency
  tracking,
* :mod:`repro.core.hlo` — the Lf x Lsensing LDPC-overhead rule,
* :mod:`repro.core.access_eval` — the AccessEval controller and
  ReducedCell pool.
"""

from repro.core.reduce_code import (
    REDUCE_CODE_DECODE,
    REDUCE_CODE_ENCODE,
    ReduceCodeCoding,
    decode_levels,
    encode_bits,
)
from repro.core.programming import TwoStepProgrammer
from repro.core.bitline import NormalWordline, ReducedWordline
from repro.core.nunma import basic_reduced_plan, nunma_plan
from repro.core.pair_code import (
    build_pair_code,
    optimize_pair_code,
    slip_cost,
    staged_program_plan,
)
from repro.core.level_adjust import CellMode, LevelAdjustPolicy
from repro.core.hotness import MultiBloomHotness
from repro.core.hlo import HloIdentifier, OverheadRule
from repro.core.access_eval import AccessEval, ReducedCellPool

__all__ = [
    "REDUCE_CODE_DECODE",
    "REDUCE_CODE_ENCODE",
    "ReduceCodeCoding",
    "decode_levels",
    "encode_bits",
    "TwoStepProgrammer",
    "NormalWordline",
    "ReducedWordline",
    "basic_reduced_plan",
    "nunma_plan",
    "build_pair_code",
    "optimize_pair_code",
    "slip_cost",
    "staged_program_plan",
    "CellMode",
    "LevelAdjustPolicy",
    "MultiBloomHotness",
    "HloIdentifier",
    "OverheadRule",
    "AccessEval",
    "ReducedCellPool",
]
