"""Tests for GF(2^m) arithmetic, including field-axiom properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.galois import GF2m
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def gf16():
    return GF2m(4)


class TestBasics:
    def test_sizes(self, gf16):
        assert gf16.size == 16
        assert gf16.order == 15

    def test_addition_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100

    def test_zero_annihilates(self, gf16):
        for a in range(16):
            assert gf16.mul(a, 0) == 0

    def test_one_is_identity(self, gf16):
        for a in range(16):
            assert gf16.mul(a, 1) == a

    def test_inverse(self, gf16):
        for a in range(1, 16):
            assert gf16.mul(a, gf16.inv(a)) == 1

    def test_inverse_of_zero_raises(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inv(0)

    def test_div(self, gf16):
        for a in range(1, 16):
            for b in range(1, 16):
                assert gf16.mul(gf16.div(a, b), b) == a

    def test_pow(self, gf16):
        alpha = 2
        assert gf16.pow(alpha, 0) == 1
        assert gf16.pow(alpha, 15) == 1  # group order
        assert gf16.pow(alpha, -1) == gf16.inv(alpha)

    def test_alpha_generates_group(self, gf16):
        seen = {gf16.alpha_pow(i) for i in range(15)}
        assert seen == set(range(1, 16))

    def test_log_exp_roundtrip(self, gf16):
        for a in range(1, 16):
            assert gf16.alpha_pow(gf16.log(a)) == a

    def test_unsupported_m(self):
        with pytest.raises(ConfigurationError):
            GF2m(1)

    def test_out_of_field_rejected(self, gf16):
        with pytest.raises(ConfigurationError):
            gf16.mul(16, 1)

    @pytest.mark.parametrize("m", [2, 3, 8, 12])
    def test_all_primitive_polys_valid(self, m):
        # GF2m construction itself checks primitivity
        field = GF2m(m)
        assert field.order == (1 << m) - 1


class TestPolynomials:
    def test_poly_eval_constant(self, gf16):
        assert gf16.poly_eval([5], 7) == 5

    def test_poly_eval_linear(self, gf16):
        # p(x) = 3 + 2x at x = 4
        expected = 3 ^ gf16.mul(2, 4)
        assert gf16.poly_eval([3, 2], 4) == expected

    def test_poly_mul_degree(self, gf16):
        product = gf16.poly_mul([1, 1], [1, 1])  # (1+x)^2 = 1 + x^2 over GF(2^m)
        assert product == [1, 0, 1]

    def test_minimal_polynomial_is_binary_and_annihilates(self, gf16):
        for i in range(1, 6):
            element = gf16.alpha_pow(i)
            poly = gf16.minimal_polynomial(element)
            assert all(c in (0, 1) for c in poly)
            assert gf16.poly_eval(poly, element) == 0

    def test_minimal_polynomial_of_zero(self, gf16):
        assert gf16.minimal_polynomial(0) == [0, 1]


@settings(max_examples=80, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.integers(0, 255))
def test_property_field_axioms_gf256(a, b, c):
    field = GF2m(8)
    # commutativity
    assert field.mul(a, b) == field.mul(b, a)
    # associativity
    assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
    # distributivity over XOR addition
    assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)
