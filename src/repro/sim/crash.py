"""The crash → recover → resume pipeline.

:mod:`repro.faults.power` decides *when* power is lost and
:mod:`repro.ftl.recovery` models *what* the medium durably holds; this
module wires them end to end around both engines:

1. **Crash** — run an engine with a ``crash_us`` cut (fixed ``--at-us``
   point or the next draw of a seeded :class:`~repro.faults.power.
   SpoSchedule`); the run stops cold with in-flight requests aborted.
2. **Recover** — remount from the durable medium: checkpoint + journal
   replay when a checkpoint exists (optionally cross-checked against
   the full OOB scan), torn-page reconciliation, interrupted-erase
   redo, power-loss-protection replay of acknowledged-but-unprogrammed
   writes, grown-bad-table replay, FlexLevel pool re-derivation.  The
   crash invariant — *every write dispatched before the cut is
   readable after remount* — is verified at every cut, and the remount
   is attributed (``ftl.recovery.*`` metrics, a recovery span tree, a
   deterministic artifact with a ``recovery_fingerprint``).
3. **Resume** — wrap the rebuilt SSD in a fresh system and replay the
   trace suffix that never arrived (``arrival >= crash_us``); under a
   Poisson SPO schedule the cycle repeats up to ``max_crashes`` times.

Loss semantics (pinned in tests/sim/test_crash.py): reads aborted at
the cut are simply lost; writes *dispatched* before the cut all
survive (durable, PLP-flushed, or physically protected); writes never
dispatched belong to the resumed run.  See docs/RECOVERY.md.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.baselines.systems import (
    StorageSystem,
    SystemConfig,
    build_system,
)
from repro.core.level_adjust import CellMode
from repro.errors import ConfigurationError, SimulationError
from repro.faults import FaultConfig, FaultInjector
from repro.faults.power import PowerConfig, SpoSchedule
from repro.ftl.recovery import (
    MediumState,
    RecoveryConfig,
    RecoveryManager,
    RecoveryReport,
    rebuild_ssd,
    recovery_fingerprint,
)
from repro.ftl.ssd import _MODE_TO_INT
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import WindowedRecorder
from repro.obs.tracing import Span
from repro.sim.des import DesSimulationEngine
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimulationResult
from repro.traces.schema import TraceRecord

ENGINES = ("queue", "des")


@dataclass
class RecoveryOutcome:
    """One remount: the recovered system plus its full attribution."""

    report: RecoveryReport
    state: MediumState
    span: Span
    artifact: dict[str, Any]
    system: StorageSystem
    recovered_end_us: float
    rescued: list[int]
    plp: dict[int, int]


@dataclass
class CrashCycle:
    """One engine leg and, if it was cut short, its recovery."""

    result: SimulationResult
    outcome: RecoveryOutcome | None = None


@dataclass
class CrashRunResult:
    """A whole crash/recover/resume run (possibly multiple cycles)."""

    system_name: str
    workload_name: str
    engine: str
    power: PowerConfig
    cycles: list[CrashCycle] = field(default_factory=list)
    #: The system the final leg ran on (post-recovery when it crashed
    #: at least once) — the CLI and tests inspect its SSD state.
    final_system: Any = None

    @property
    def crashes(self) -> int:
        return sum(1 for c in self.cycles if c.outcome is not None)

    @property
    def final(self) -> SimulationResult:
        return self.cycles[-1].result

    @property
    def reports(self) -> list[RecoveryReport]:
        return [c.outcome.report for c in self.cycles if c.outcome is not None]

    @property
    def artifacts(self) -> list[dict[str, Any]]:
        return [
            c.outcome.artifact for c in self.cycles if c.outcome is not None
        ]

    def to_dict(self) -> dict[str, Any]:
        """Deterministic artifact of the whole run (CLI ``--json``).

        Virtual-time quantities only — a fixed (trace, config, SPO
        seed) reproduces it byte for byte; ``fingerprint`` pins that
        in the determinism tests.
        """
        body: dict[str, Any] = {
            "schema": "repro/crash-run/v1",
            "system": self.system_name,
            "workload": self.workload_name,
            "engine": self.engine,
            "power": self.power.to_dict(),
            "crashes": self.crashes,
            "cycles": [
                {
                    "crashed": cycle.result.crashed,
                    "crash_us": cycle.result.crash_us,
                    "aborted_requests": cycle.result.aborted_requests,
                    "n_requests": cycle.result.n_requests,
                    "recovery": (
                        None
                        if cycle.outcome is None
                        else cycle.outcome.artifact
                    ),
                }
                for cycle in self.cycles
            ],
        }
        body["fingerprint"] = recovery_fingerprint(body)
        return body


def _mapping_digest(state: MediumState) -> str:
    """Content digest of the recovered mapping (identity + versions)."""
    body = json.dumps(
        [
            [lpn, rec.ppn, rec.seq, rec.host_version]
            for lpn, rec in sorted(state.live.items())
        ],
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def _verify_plp_volatile(
    manager: RecoveryManager,
    plp: dict[int, int],
    buffer_lpns: list[int],
    crash_us: float,
) -> None:
    """The crash invariant's physical half: every acknowledged write
    the medium does not durably hold must still be controller-volatile
    at the cut — in the write buffer, or a host program not yet durable
    — or the capacitor flush could not save it."""
    volatile = set(buffer_lpns) | manager.volatile_host_lpns(crash_us)
    missing = sorted(set(plp) - volatile)
    if missing:
        raise SimulationError(
            f"crash invariant violated at {crash_us}: acknowledged lpns "
            f"{missing[:8]} are neither durable nor volatile at the cut"
        )


def recover(
    system: StorageSystem,
    crash_us: float,
    fault_config: FaultConfig | None = None,
    system_name: str | None = None,
) -> RecoveryOutcome:
    """Remount a crashed system from its durable medium.

    Returns a fresh, resumable :class:`StorageSystem` of the same kind
    wrapping the rebuilt SSD, plus the remount's full attribution.
    Raises :class:`~repro.errors.SimulationError` if the two remount
    paths disagree or an acknowledged write would be lost.
    """
    manager = system.ssd.recovery
    if manager is None:
        raise ConfigurationError(
            "system has no RecoveryManager attached; build it with "
            "recovery=RecoveryManager(...) to make it crash-recoverable"
        )
    cfg = manager.config
    torn = manager.torn_programs(crash_us)

    replay = manager.replay_at(crash_us)
    scan = None
    if replay is None or cfg.verify_scan:
        scan = manager.scan_at(crash_us)
    if replay is not None:
        state = replay
        strategy = "journal"
        if scan is not None and scan.mapping() != state.mapping():
            raise SimulationError(
                f"remount divergence at {crash_us}: full OOB scan and "
                f"checkpoint+journal replay produced different mappings"
            )
    else:
        state = scan
        strategy = "scan"

    # What the controller's capacitors flush on power loss: for each
    # acknowledged LPN, the newest dispatched version the medium does
    # not durably hold.
    plp = manager.plp_log(crash_us, state.versions())
    _verify_plp_volatile(manager, plp, system.buffer.residents(), crash_us)

    ssd, reerased, grown, rescued = rebuild_ssd(manager, state, fault_config)

    cp = manager.checkpoint_before(crash_us)
    checkpoint_age = crash_us - (cp.time_us if cp is not None else 0.0)
    torn_host = sum(1 for rec in torn if rec.kind == "host")
    report = RecoveryReport(
        crash_us=crash_us,
        strategy=strategy,
        checkpoint_age_us=checkpoint_age,
        journal_entries=state.journal_entries,
        journal_replayed=state.journal_replayed,
        scan_pages_read=state.scan_pages_read,
        live_pages=len(state.live),
        torn_pages=len(torn),
        discarded_pages=len(torn) - torn_host,
        plp_pages=len(plp),
        reerased_blocks=reerased,
        grown_bad_replayed=grown,
        scan_matches_replay=scan is not None,
        plp_flush_us=len(plp) * cfg.program_us,
        checkpoint_load_us=(
            cfg.checkpoint_load_us if strategy == "journal" else 0.0
        ),
        journal_replay_us=(
            state.journal_replayed * cfg.journal_entry_us
            if strategy == "journal"
            else 0.0
        ),
        oob_scan_us=(
            state.scan_pages_read * cfg.oob_read_us
            if strategy == "scan"
            else 0.0
        ),
        reconcile_us=len(torn) * cfg.oob_read_us,
        reerase_us=reerased * cfg.erase_us,
    )
    recovered_end_us = crash_us + report.recovery_time_us

    # The recovery span tree: sequential phases from the cut onward.
    span = Span("recovery", crash_us, strategy=strategy)
    cursor = crash_us
    for name, duration, attrs in (
        ("plp_flush", report.plp_flush_us, {"pages": len(plp)}),
        ("checkpoint_load", report.checkpoint_load_us, {}),
        (
            "journal_replay",
            report.journal_replay_us,
            {"entries": state.journal_replayed},
        ),
        ("oob_scan", report.oob_scan_us, {"pages": state.scan_pages_read}),
        ("reconcile", report.reconcile_us, {"torn_pages": len(torn)}),
        ("reerase", report.reerase_us, {"blocks": reerased}),
    ):
        if duration <= 0.0:
            continue
        span.span(name, cursor, **attrs).end(cursor + duration)
        cursor += duration
    span.end(recovered_end_us)

    # The manager carries over reseeded: same sequence/version/wear
    # counters, the recovered mapping as its new durable baseline.
    ssd.recovery = manager.reseed(state, recovered_end_us)

    name = system_name or system.name
    new_system = build_system(
        name,
        system.config,
        level_adjust=system.level_adjust,
        latency_model=system.latency,
        ssd=ssd,
    )

    # FlexLevel re-derives its ReducedCell pool from block modes (the
    # pool is volatile state); hotness restarts cold by design.
    if hasattr(new_system, "access_eval"):
        reduced = _MODE_TO_INT[CellMode.REDUCED]
        for lpn in sorted(state.live):
            if state.live[lpn].mode == reduced:
                new_system.access_eval.pool.admit(lpn)

    # Replay: pages rescued off retired blocks first, then the PLP set
    # (sorted for determinism; a newer PLP version supersedes a rescue).
    replayed_writes = 0
    if not ssd.read_only:
        for lpn in rescued:
            ssd.host_write(lpn, new_system.write_mode(lpn), recovered_end_us)
            replayed_writes += 1
        for lpn in sorted(plp):
            ssd.host_write(lpn, new_system.write_mode(lpn), recovered_end_us)
            replayed_writes += 1

    artifact: dict[str, Any] = {
        "schema": "repro/recovery/v1",
        "crash_us": crash_us,
        "system": name,
        "report": report.to_dict(),
        "recovery_config": cfg.to_dict(),
        "recovered_end_us": recovered_end_us,
        "live_pages": len(state.live),
        "rescued_pages": len(rescued),
        "replayed_writes": replayed_writes,
        "read_only": bool(ssd.read_only),
        "mapping_digest": _mapping_digest(state),
        "span": span.to_dict(),
    }
    artifact["fingerprint"] = recovery_fingerprint(artifact)

    return RecoveryOutcome(
        report=report,
        state=state,
        span=span,
        artifact=artifact,
        system=new_system,
        recovered_end_us=recovered_end_us,
        rescued=rescued,
        plp=plp,
    )


def _make_engine(
    engine: str,
    system: StorageSystem,
    warmup_fraction: float,
    n_channels: int,
    registry: MetricsRegistry | None,
    recorder: WindowedRecorder | None,
):
    if engine == "queue":
        return SimulationEngine(
            system,
            warmup_fraction=warmup_fraction,
            n_channels=n_channels,
            registry=registry,
            recorder=recorder,
        )
    if engine == "des":
        return DesSimulationEngine(
            system,
            warmup_fraction=warmup_fraction,
            n_channels=n_channels,
            registry=registry,
            recorder=recorder,
        )
    raise ConfigurationError(f"unknown engine {engine!r}; choose from {ENGINES}")


def run_with_crashes(
    system_name: str,
    config: SystemConfig,
    records: Sequence[TraceRecord],
    power: PowerConfig,
    recovery: RecoveryConfig | None = None,
    engine: str = "queue",
    fault_config: FaultConfig | None = None,
    resume: bool = True,
    warmup_fraction: float = 0.0,
    n_channels: int = 1,
    workload_name: str = "unnamed",
    registry: MetricsRegistry | None = None,
    recorder: WindowedRecorder | None = None,
) -> CrashRunResult:
    """Run a trace under seeded SPO injection, recovering at each cut.

    With ``resume=False`` the run stops after the first recovery (the
    CLI's crash-then-inspect mode); otherwise the trace suffix that
    never arrived replays against the recovered system, repeatedly,
    until the schedule is exhausted or the trace completes.
    """
    if recovery is None:
        recovery = RecoveryConfig()
    records = list(records)
    if not records:
        raise ConfigurationError("empty trace")

    manager = RecoveryManager(recovery, config.ssd)
    injector = None
    if fault_config is not None and fault_config.enabled:
        injector = FaultInjector(fault_config)
    system = build_system(
        system_name, config, fault_injector=injector, recovery=manager
    )
    schedule = SpoSchedule(power)

    run = CrashRunResult(
        system_name=system_name,
        workload_name=workload_name,
        engine=engine,
        power=power,
    )
    origin = 0.0
    remaining = records
    first = True
    while remaining:
        crash_us = schedule.next_crash_after(origin)
        if registry is not None and not first:
            # Every leg registers fresh response histograms under the
            # same names; the resumed leg's registration supersedes the
            # crashed one's (counters and gauges accumulate normally).
            registry.deregister("sim.read.response_us")
            registry.deregister("sim.write.response_us")
        eng = _make_engine(
            engine,
            system,
            warmup_fraction if first else 0.0,
            n_channels,
            registry,
            recorder,
        )
        result = eng.run(remaining, workload_name, crash_us=crash_us)
        if not result.crashed:
            run.cycles.append(CrashCycle(result=result))
            break
        outcome = recover(
            system,
            result.crash_us,
            fault_config=fault_config,
            system_name=system_name,
        )
        run.cycles.append(CrashCycle(result=result, outcome=outcome))
        if registry is not None:
            outcome.report.publish(registry)
        if recorder is not None:
            # The monitor's SPO rule watches this series: one event
            # per cut, binned at the crash instant — nudged into the
            # first still-open window when the crashed leg's flush has
            # already closed the window containing the cut (closed
            # windows are final by the recorder contract).
            open_edge = (
                recorder.origin_us
                + recorder.closed_through * recorder.window_us
            )
            recorder.add(
                "ftl.recovery.events", max(result.crash_us, open_edge)
            )
        if not resume:
            break
        system = outcome.system
        origin = result.crash_us
        remaining = [
            r for r in remaining if r.timestamp_us >= result.crash_us
        ]
        first = False
    run.final_system = system
    return run
