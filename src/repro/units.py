"""Unit helpers and constants shared across the package.

Conventions (see DESIGN.md):

* voltages are in volts,
* device-model times (retention) are in **hours**,
* storage-system times (latencies, trace timestamps) are in
  **microseconds**,
* capacities are in **bytes**.
"""

from __future__ import annotations

# --- capacity ---------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# --- time (storage system: microseconds) ------------------------------------

US = 1.0
MS = 1000.0 * US
SECOND = 1000.0 * MS
MINUTE = 60.0 * SECOND
HOUR_US = 60.0 * MINUTE

# --- time (device models: hours) ---------------------------------------------

HOUR = 1.0
DAY = 24.0 * HOUR
WEEK = 7.0 * DAY
MONTH = 30.0 * DAY


def hours_to_us(hours: float) -> float:
    """Convert device-model hours to storage-system microseconds."""
    return hours * HOUR_US


def us_to_hours(us: float) -> float:
    """Convert storage-system microseconds to device-model hours."""
    return us / HOUR_US


def bytes_to_pages(n_bytes: int, page_size: int) -> int:
    """Number of pages needed to hold ``n_bytes`` (ceiling division)."""
    if n_bytes < 0:
        raise ValueError(f"negative byte count: {n_bytes}")
    if page_size <= 0:
        raise ValueError(f"non-positive page size: {page_size}")
    return -(-n_bytes // page_size)
