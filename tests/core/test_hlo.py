"""Tests for the HLO identification rule (paper §5)."""

import pytest

from repro.core.hlo import HloIdentifier, OverheadRule
from repro.core.hotness import MultiBloomHotness
from repro.errors import ConfigurationError


class TestOverheadRule:
    def test_paper_defaults(self):
        rule = OverheadRule()
        assert rule.freq_levels == 2
        assert rule.sensing_buckets == 2
        assert rule.threshold == 4

    def test_zero_extra_levels_is_bucket_one(self):
        rule = OverheadRule()
        assert rule.sensing_bucket(0) == 1

    def test_any_extra_level_reaches_bucket_two(self):
        rule = OverheadRule(sensing_buckets=2)
        for k in range(1, 8):
            assert rule.sensing_bucket(k) == 2

    def test_buckets_monotone(self):
        rule = OverheadRule(sensing_buckets=4)
        buckets = [rule.sensing_bucket(k) for k in range(8)]
        assert buckets == sorted(buckets)
        assert max(buckets) == 4

    def test_overhead_is_product(self):
        rule = OverheadRule(freq_levels=3, sensing_buckets=3, threshold=6)
        assert rule.overhead(2, 3) == 6
        assert rule.is_hlo(2, 3)
        assert not rule.is_hlo(2, 2)

    def test_hlo_needs_both_hot_and_expensive(self):
        rule = OverheadRule()  # threshold 4 = 2 x 2
        assert rule.is_hlo(2, 2)
        assert not rule.is_hlo(2, 1)  # hot but cheap reads
        assert not rule.is_hlo(1, 2)  # expensive but cold

    def test_bounds_checked(self):
        rule = OverheadRule()
        with pytest.raises(ConfigurationError):
            rule.overhead(3, 1)
        with pytest.raises(ConfigurationError):
            rule.sensing_bucket(-1)

    def test_threshold_bounds(self):
        with pytest.raises(ConfigurationError):
            OverheadRule(threshold=5)
        with pytest.raises(ConfigurationError):
            OverheadRule(threshold=0)


class TestIdentifier:
    def make_identifier(self):
        hotness = MultiBloomHotness(n_filters=4, window=4, freq_levels=2)
        return HloIdentifier(hotness=hotness)

    def test_cold_page_never_hlo(self):
        identifier = self.make_identifier()
        assert not identifier.observe_read(1, extra_levels=6)

    def test_hot_cheap_page_not_hlo(self):
        identifier = self.make_identifier()
        for _ in range(20):
            assert not identifier.observe_read(1, extra_levels=0)

    def test_hot_expensive_page_becomes_hlo(self):
        identifier = self.make_identifier()
        results = [identifier.observe_read(1, extra_levels=3) for _ in range(20)]
        assert not results[0]
        assert results[-1]

    def test_hlo_fraction(self):
        identifier = self.make_identifier()
        for _ in range(20):
            identifier.observe_read(1, extra_levels=3)
        assert 0.0 < identifier.hlo_fraction() < 1.0

    def test_fraction_zero_before_reads(self):
        assert self.make_identifier().hlo_fraction() == 0.0

    def test_freq_levels_must_agree(self):
        with pytest.raises(ConfigurationError):
            HloIdentifier(
                rule=OverheadRule(freq_levels=3),
                hotness=MultiBloomHotness(freq_levels=2),
            )
