"""Tests for simulation result aggregation."""

import numpy as np
import pytest

from repro.sim.results import DesSimulationResult, SimulationResult
from repro.errors import ConfigurationError


def make_result():
    result = SimulationResult("flexlevel", "fin-2")
    for value in (100.0, 200.0, 300.0):
        result.record(False, value)
    for value in (50.0, 150.0):
        result.record(True, value)
    return result


class TestAggregates:
    def test_counts(self):
        result = make_result()
        assert result.n_requests == 5

    def test_means(self):
        result = make_result()
        assert result.mean_read_response_us() == pytest.approx(200.0)
        assert result.mean_write_response_us() == pytest.approx(100.0)
        assert result.mean_response_us() == pytest.approx(160.0)

    def test_percentile(self):
        result = make_result()
        assert result.percentile_response_us(100) == pytest.approx(300.0)
        assert result.percentile_response_us(0) == pytest.approx(50.0)

    def test_empty_result(self):
        result = SimulationResult("baseline", "none")
        assert result.mean_response_us() == 0.0
        assert result.percentile_response_us(99) == 0.0

    def test_summary_keys(self):
        result = make_result()
        result.stats = {"erase_blocks": 3}
        summary = result.summary()
        assert summary["n_requests"] == 5
        assert summary["stats.erase_blocks"] == 3

    def test_rejects_negative_response(self):
        with pytest.raises(ConfigurationError):
            make_result().record(False, -1.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ConfigurationError):
            make_result().percentile_response_us(101)


class TestSampleCap:
    def test_exact_below_cap(self):
        result = SimulationResult("s", "w", sample_cap=10)
        for value in (10.0, 20.0, 30.0):
            result.record(False, value)
        assert result.exact_samples
        assert result.percentile_response_us(50) == pytest.approx(20.0)

    def test_lists_bounded_at_cap(self):
        """Memory past the cap is O(histogram buckets), not O(requests)."""
        cap = 1_000
        result = SimulationResult("s", "w", sample_cap=cap)
        rng = np.random.default_rng(42)
        samples = rng.lognormal(mean=5.0, sigma=0.8, size=100_000)
        for i, value in enumerate(samples):
            result.record(i % 4 == 0, float(value))
        assert not result.exact_samples
        assert len(result.read_responses_us) + len(result.write_responses_us) == cap
        assert result.n_requests == 100_000

    def test_streaming_percentiles_within_5pct_of_exact(self):
        """The acceptance bound: capped runs stay within 5 % at p99."""
        result = SimulationResult("s", "w", sample_cap=1_000)
        rng = np.random.default_rng(2015)
        samples = rng.lognormal(mean=5.5, sigma=0.9, size=100_000)
        for i, value in enumerate(samples):
            result.record(i % 3 == 0, float(value))
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            assert result.percentile_response_us(q) == pytest.approx(
                exact, rel=0.05
            ), f"p{q}"

    def test_mean_exact_at_any_scale(self):
        result = SimulationResult("s", "w", sample_cap=2)
        values = [10.0, 20.0, 30.0, 40.0]
        for value in values:
            result.record(False, value)
        assert result.mean_response_us() == pytest.approx(float(np.mean(values)))


class TestSummaryDedupe:
    def make_des_result(self):
        result = DesSimulationResult("flexlevel", "fin-2")
        for value in (100.0, 200.0, 300.0):
            result.record(False, value)
        result.channel_busy_us = [10.0, 20.0]
        result.makespan_us = 100.0
        return result

    def test_des_summary_percentile_keys_present_once(self):
        summary = self.make_des_result().summary()
        for key in ("p50_response_us", "p95_response_us", "p99_response_us"):
            assert key in summary

    def test_des_summary_computes_each_percentile_once(self, monkeypatch):
        """Pin the fix: the triple comes from the base summary alone."""
        result = self.make_des_result()
        calls = []
        original = SimulationResult.percentile_response_us

        def counting(self, q):
            calls.append(q)
            return original(self, q)

        monkeypatch.setattr(SimulationResult, "percentile_response_us", counting)
        result.summary()
        assert sorted(calls) == [50, 95, 99]

    def test_des_summary_extends_base_summary(self):
        result = self.make_des_result()
        summary = result.summary()
        for key, value in SimulationResult.summary(result).items():
            assert summary[key] == value
        assert summary["n_channels"] == 2
        assert summary["makespan_us"] == 100.0
