"""Tests for span trees, the sampling policy and trace export."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import Span, Tracer, attribute_request, spans_from_chrome_trace


def make_request_span(start=0.0, wait=5.0, rounds=2):
    """A miniature read request tree like the DES engine produces."""
    root = Span("read_request", start, index=0, n_pages=1)
    root.span("queue_wait", start).end(start + wait)
    op = root.span("flash_read", start + wait, channel=1, lpn=42)
    t = start + wait
    for r in range(rounds):
        round_span = op.span("sensing_round", t, round=r)
        round_span.span("sense", t).end(t + 30.0)
        round_span.span("ldpc_decode", t + 30.0, iterations=4).end(t + 40.0)
        t += 40.0
        round_span.end(t)
    op.end(t)
    root.end(t)
    return root


class TestSpan:
    def test_nesting_and_walk(self):
        root = make_request_span()
        names = [span.name for span in root.walk()]
        assert names[0] == "read_request"
        assert names.count("sensing_round") == 2
        assert names.count("ldpc_decode") == 2

    def test_find(self):
        root = make_request_span(rounds=3)
        assert len(root.find("sensing_round")) == 3
        assert root.find("read_request") == [root]
        assert root.find("missing") == []

    def test_duration(self):
        root = make_request_span(start=10.0, wait=5.0, rounds=1)
        assert root.duration_us == pytest.approx(45.0)
        assert root.find("queue_wait")[0].duration_us == pytest.approx(5.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            Span("bad", -1.0)

    def test_rejects_end_before_start(self):
        with pytest.raises(ConfigurationError):
            Span("bad", 10.0).end(5.0)

    def test_events_in_dict(self):
        span = Span("s", 0.0)
        span.event("gc_preempted", 3.0, channel=2)
        span.end(5.0)
        out = span.to_dict()
        assert out["events"] == [{"name": "gc_preempted", "time_us": 3.0, "channel": 2}]

    def test_to_dict_roundtrips_through_json(self):
        out = json.loads(json.dumps(make_request_span().to_dict()))
        assert out["name"] == "read_request"
        assert out["children"][0]["name"] == "queue_wait"


class TestSamplingPolicy:
    def finish_stream(self, tracer, durations):
        for i, duration in enumerate(durations):
            span = tracer.begin_request("read_request", 100.0 * i)
            tracer.finish_request(span, 100.0 * i + duration)

    def test_head_sampling_keeps_every_nth(self):
        tracer = Tracer(sample_every=10, keep_slowest=0)
        self.finish_stream(tracer, [1.0] * 95)
        assert tracer.n_seen == 95
        assert len(tracer.spans) == 10  # seq 0, 10, ..., 90
        assert [span.attrs["seq"] for span in tracer.spans] == list(range(0, 100, 10))

    def test_reservoir_keeps_slowest(self):
        tracer = Tracer(sample_every=0, keep_slowest=3)
        self.finish_stream(tracer, [5.0, 50.0, 1.0, 40.0, 2.0, 30.0, 3.0])
        slowest = [span.duration_us for span in tracer.slowest()]
        assert slowest == [50.0, 40.0, 30.0]

    def test_slowest_survive_head_sampling(self):
        """The one slow request is off the head-sampling grid but kept."""
        durations = [1.0] * 1000
        durations[537] = 9_999.0
        tracer = Tracer(sample_every=100, keep_slowest=2)
        self.finish_stream(tracer, durations)
        kept_seqs = {span.attrs["seq"] for span in tracer.spans}
        assert 537 in kept_seqs
        assert tracer.slowest()[0].duration_us == pytest.approx(9_999.0)

    def test_deterministic_for_same_stream(self):
        durations = [float((7 * i) % 113) for i in range(500)]
        keeps = []
        for _ in range(2):
            tracer = Tracer(sample_every=50, keep_slowest=4)
            self.finish_stream(tracer, durations)
            keeps.append([span.attrs["seq"] for span in tracer.spans])
        assert keeps[0] == keeps[1]

    def test_ties_broken_by_arrival_order(self):
        tracer = Tracer(sample_every=0, keep_slowest=2)
        self.finish_stream(tracer, [10.0, 10.0, 10.0, 10.0])
        # Later equal-duration requests evict earlier ones (entry > heap
        # root compares seq on equal duration), deterministically; ties
        # then list in arrival order.
        assert [span.attrs["seq"] for span in tracer.slowest()] == [2, 3]

    def test_rejects_keeping_nothing(self):
        with pytest.raises(ConfigurationError):
            Tracer(sample_every=0, keep_slowest=0)

    def test_rejects_unended_span(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.finish_request(tracer.begin_request("r", 0.0))


class TestExport:
    def test_jsonl_one_tree_per_line(self, tmp_path):
        tracer = Tracer(sample_every=1, keep_slowest=0)
        for i in range(3):
            tracer.finish_request(make_request_span(start=100.0 * i))
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            tree = json.loads(line)
            assert tree["name"] == "read_request"
            assert "children" in tree

    def test_chrome_trace_structure(self, tmp_path):
        tracer = Tracer(sample_every=1, keep_slowest=0)
        tracer.finish_request(make_request_span(rounds=2))
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path, process_name="test-sim")
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        names = [e["name"] for e in complete]
        # The acceptance shape: queue wait, sensing rounds and the LDPC
        # decode all nest under the request span on one tid.
        assert "read_request" in names
        assert "queue_wait" in names
        assert names.count("sensing_round") == 2
        assert names.count("ldpc_decode") == 2
        assert len({e["tid"] for e in complete}) == 1
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        metadata = [e for e in events if e["ph"] == "M"]
        assert any(e["args"].get("name") == "test-sim" for e in metadata)

    def test_empty_tracer_exports(self, tmp_path):
        tracer = Tracer()
        assert tracer.to_jsonl() == ""
        trace = tracer.chrome_trace()
        assert [e["ph"] for e in trace["traceEvents"]] == ["M"]


def make_parallel_span(start=0.0):
    """Two overlapping channel ops — the case time-sorting mis-nests."""
    root = Span("read_request", start, index=7, n_pages=2)
    root.span("queue_wait", start).end(start + 10.0)
    a = root.span("flash_read", start + 10.0, channel=1, lpn=1)
    ra = a.span("sensing_round", start + 10.0, round=0)
    ra.span("sense", start + 10.0).end(start + 30.0)
    ra.span("ldpc_decode", start + 30.0, iterations=3).end(start + 40.0)
    ra.end(start + 40.0)
    rb = a.span("sensing_round", start + 40.0, round=1)
    rb.span("sense", start + 40.0).end(start + 50.0)
    rb.end(start + 50.0)
    a.end(start + 50.0)
    b = root.span("flash_read", start + 20.0, channel=2, lpn=2)
    b.span("sensing_round", start + 20.0, round=0).end(start + 60.0)
    b.end(start + 60.0)
    root.end(start + 60.0)
    return root


class TestChromeRoundTrip:
    def export(self, *roots):
        tracer = Tracer(sample_every=1, keep_slowest=0)
        for root in roots:
            tracer.finish_request(root)
        return tracer, json.loads(json.dumps(tracer.chrome_trace()))

    def test_every_complete_event_carries_ts_dur_tid(self):
        _, trace = self.export(make_parallel_span())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert {"ts", "dur", "tid"} <= set(event)

    def test_nesting_reconstructed(self):
        live = make_parallel_span()
        _, trace = self.export(live)
        (rebuilt,) = spans_from_chrome_trace(trace)
        assert [s.name for s in rebuilt.walk()] == [
            s.name for s in live.walk()
        ]
        for got, want in zip(rebuilt.walk(), live.walk()):
            assert got.start_us == pytest.approx(want.start_us)
            assert got.duration_us == pytest.approx(want.duration_us)
            assert got.attrs.get("channel") == want.attrs.get("channel")
            assert got.attrs.get("round") == want.attrs.get("round")

    def test_multiple_requests_split_by_tid(self):
        first = make_parallel_span()
        second = make_parallel_span(start=1000.0)
        _, trace = self.export(first, second)
        rebuilt = spans_from_chrome_trace(trace)
        assert len(rebuilt) == 2
        assert [root.attrs["seq"] for root in rebuilt] == [0, 1]

    def test_attribution_matches_live_trees(self):
        """Attributing an exported-then-reconstructed trace gives the
        same blame as attributing the live span trees."""
        live = make_parallel_span()
        _, trace = self.export(live)
        (rebuilt,) = spans_from_chrome_trace(trace)
        want = attribute_request(live)
        got = attribute_request(rebuilt)
        assert got.duration_us == pytest.approx(want.duration_us)
        assert got.off_path_us == pytest.approx(want.off_path_us)
        for cause in want.causes:
            assert got.causes[cause] == pytest.approx(
                want.causes[cause]
            ), cause

    def test_missing_fields_rejected(self):
        trace = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0}]}
        with pytest.raises(ConfigurationError):
            spans_from_chrome_trace(trace)

    def test_metadata_events_ignored(self):
        assert spans_from_chrome_trace(
            {"traceEvents": [{"name": "process_name", "ph": "M"}]}
        ) == []
