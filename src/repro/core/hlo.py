"""HLO (high-LDPC-overhead) data identification (paper §5).

The LDPC overhead a datum contributes is the product of how often it is
read and how expensive each read is.  The paper's estimation rule
divides read frequency into ``N`` levels (``Lf``) and the soft-sensing
requirement into ``M`` buckets (``Lsensing``), scores each datum as
``Lf x Lsensing`` and declares it HLO when the score reaches a
threshold.  The evaluation uses N = M = 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hotness import MultiBloomHotness
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OverheadRule:
    """The ``Lf x Lsensing`` scoring rule.

    Parameters
    ----------
    freq_levels:
        ``N`` — number of read-frequency levels.
    sensing_buckets:
        ``M`` — number of soft-sensing buckets.
    max_extra_levels:
        Largest number of extra sensing levels the LDPC channel can
        demand (paper Table 5 tops out at 6; the ladder allows 7).
    threshold:
        Minimum ``Lf x Lsensing`` score that marks a datum HLO.
        Defaults to ``N x M``: only data that is both in the hottest
        read class and in the highest sensing class qualifies.
    """

    freq_levels: int = 2
    sensing_buckets: int = 2
    max_extra_levels: int = 7
    threshold: int | None = None

    def __post_init__(self) -> None:
        if self.freq_levels < 1 or self.sensing_buckets < 1:
            raise ConfigurationError("levels and buckets must be >= 1")
        if self.max_extra_levels < 1:
            raise ConfigurationError("max_extra_levels must be >= 1")
        effective = self.threshold
        if effective is None:
            object.__setattr__(self, "threshold", self.freq_levels * self.sensing_buckets)
        elif effective < 1 or effective > self.freq_levels * self.sensing_buckets:
            raise ConfigurationError(
                f"threshold {effective} outside [1, {self.freq_levels * self.sensing_buckets}]"
            )

    def sensing_bucket(self, extra_levels: int) -> int:
        """Bucket ``Lsensing`` in ``[1, sensing_buckets]`` for a read that
        needed ``extra_levels`` extra soft-sensing levels.

        Zero extra levels is always bucket 1 (hard-decision-like reads
        carry no LDPC overhead); positive counts are spread linearly
        across the remaining buckets.
        """
        if extra_levels < 0:
            raise ConfigurationError(f"negative extra sensing levels: {extra_levels}")
        if extra_levels == 0 or self.sensing_buckets == 1:
            return 1
        clamped = min(extra_levels, self.max_extra_levels)
        bucket = 1 + -(-clamped * (self.sensing_buckets - 1) // self.max_extra_levels)
        return min(bucket, self.sensing_buckets)

    def overhead(self, freq_level: int, sensing_bucket: int) -> int:
        """The ``Lf x Lsensing`` score."""
        if not 1 <= freq_level <= self.freq_levels:
            raise ConfigurationError(f"freq level {freq_level} outside [1, {self.freq_levels}]")
        if not 1 <= sensing_bucket <= self.sensing_buckets:
            raise ConfigurationError(
                f"sensing bucket {sensing_bucket} outside [1, {self.sensing_buckets}]"
            )
        return freq_level * sensing_bucket

    def is_hlo(self, freq_level: int, sensing_bucket: int) -> bool:
        """True when the score reaches the HLO threshold."""
        return self.overhead(freq_level, sensing_bucket) >= self.threshold


class HloIdentifier:
    """Combines read-frequency tracking with the overhead rule.

    Parameters
    ----------
    rule:
        The scoring rule (defaults to the paper's N = M = 2).
    hotness:
        Read-frequency tracker; a default multi-Bloom tracker matching
        the rule's ``freq_levels`` is created when omitted.
    """

    def __init__(
        self,
        rule: OverheadRule | None = None,
        hotness: MultiBloomHotness | None = None,
    ):
        self.rule = rule or OverheadRule()
        self.hotness = hotness or MultiBloomHotness(freq_levels=self.rule.freq_levels)
        if self.hotness.freq_levels != self.rule.freq_levels:
            raise ConfigurationError(
                "hotness tracker and overhead rule disagree on freq_levels"
            )
        self.reads_observed = 0
        self.hlo_hits = 0

    def observe_read(self, lpn: int, extra_levels: int) -> bool:
        """Record a read of logical page ``lpn`` and classify it.

        Returns True when the page's current score marks it HLO.
        """
        self.hotness.record_read(lpn)
        freq_level = self.hotness.frequency_level(lpn)
        bucket = self.rule.sensing_bucket(extra_levels)
        is_hlo = self.rule.is_hlo(freq_level, bucket)
        self.reads_observed += 1
        if is_hlo:
            self.hlo_hits += 1
        return is_hlo

    def hlo_fraction(self) -> float:
        """Fraction of observed reads classified as HLO."""
        if self.reads_observed == 0:
            return 0.0
        return self.hlo_hits / self.reads_observed
