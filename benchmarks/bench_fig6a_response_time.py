"""Fig. 6(a): normalized overall average response time, four systems.

Paper claims: FlexLevel (LevelAdjust+AccessEval) cuts the overall
response time by 66 % vs the baseline and 33 % vs LDPC-in-SSD on
average; LevelAdjust-only is 27 % *slower* than LDPC-in-SSD because the
capacity loss eats the over-provisioning and inflates GC.
"""

import numpy as np
from conftest import BENCH_WORKLOADS, QUICK, write_table

from repro.analysis.experiments import normalized_response_times


def test_fig6a_response_time(benchmark, results_dir, matrix_6000, bench_case):
    bench_case.configure(workloads=list(BENCH_WORKLOADS))
    normalized = benchmark.pedantic(
        normalized_response_times, args=(matrix_6000,), rounds=1, iterations=1
    )

    systems = ("baseline", "ldpc-in-ssd", "leveladjust-only", "flexlevel")
    lines = ["workload  " + "  ".join(f"{s:>16s}" for s in systems)]
    for workload in BENCH_WORKLOADS:
        row = "  ".join(f"{normalized[workload][s]:16.3f}" for s in systems)
        lines.append(f"{workload:8s}  {row}")
    means = {
        s: float(np.mean([normalized[w][s] for w in BENCH_WORKLOADS]))
        for s in systems
    }
    lines.append("")
    lines.append(
        "mean     " + "  ".join(f"{means[s]:16.3f}" for s in systems)
    )
    flex_vs_base = 1.0 - means["flexlevel"]
    flex_vs_ldpc = 1.0 - means["flexlevel"] / means["ldpc-in-ssd"]
    la_vs_ldpc = means["leveladjust-only"] / means["ldpc-in-ssd"] - 1.0
    lines.append("")
    lines.append(f"flexlevel vs baseline:     -{flex_vs_base:.0%}  (paper: -66%)")
    lines.append(f"flexlevel vs ldpc-in-ssd:  -{flex_vs_ldpc:.0%}  (paper: -33%)")
    lines.append(f"leveladjust-only vs ldpc:  {la_vs_ldpc:+.0%}  (paper: +27%)")
    write_table(results_dir, "fig6a_response_time", lines)

    bench_case.emit(
        {
            "flexlevel_vs_baseline_reduction": flex_vs_base,
            "flexlevel_vs_ldpc_reduction": flex_vs_ldpc,
            "leveladjust_vs_ldpc_overhead": la_vs_ldpc,
            "flexlevel_mean_normalized": means["flexlevel"],
        },
        specs={
            "flexlevel_vs_baseline_reduction": {"direction": "higher"},
            "flexlevel_vs_ldpc_reduction": {"direction": "higher"},
        },
        table="fig6a_response_time",
    )

    # The adaptive system must beat worst-case provisioning at any scale.
    assert means["flexlevel"] < means["baseline"]
    if not QUICK:
        # Paper shape: FlexLevel beats both baselines on average; the
        # LevelAdjust-only system pays for its capacity loss vs LDPC-in-SSD.
        assert means["flexlevel"] < means["ldpc-in-ssd"] < means["baseline"]
        assert flex_vs_base > 0.45
        assert flex_vs_ldpc > 0.10
        assert la_vs_ldpc > 0.0
