"""Trace characterization.

Computes the statistics that define a workload's character — the same
quantities the synthetic generator takes as parameters — so real traces
can be profiled into :class:`~repro.traces.synthetic.SyntheticWorkload`
presets and synthetic traces can be validated against their specs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.schema import TraceRecord


@dataclass(frozen=True)
class TraceProfile:
    """Measured workload characteristics.

    Attributes mirror :class:`SyntheticWorkload`'s parameters plus a few
    distribution summaries.
    """

    n_requests: int
    read_fraction: float
    footprint_pages: int
    mean_request_pages: float
    mean_interarrival_us: float
    sequential_fraction: float
    read_top5pct_share: float
    write_top5pct_share: float

    def summary(self) -> dict[str, float]:
        """Flat dict view for reports."""
        return {
            "n_requests": self.n_requests,
            "read_fraction": self.read_fraction,
            "footprint_pages": self.footprint_pages,
            "mean_request_pages": self.mean_request_pages,
            "mean_interarrival_us": self.mean_interarrival_us,
            "sequential_fraction": self.sequential_fraction,
            "read_top5pct_share": self.read_top5pct_share,
            "write_top5pct_share": self.write_top5pct_share,
        }


def profile_trace(records: Iterable[TraceRecord]) -> TraceProfile:
    """Profile a trace into its characteristic statistics."""
    records = list(records)
    if not records:
        raise ConfigurationError("empty trace")
    n = len(records)
    reads = sum(1 for r in records if not r.is_write)
    pages_touched: set[int] = set()
    read_counts: Counter[int] = Counter()
    write_counts: Counter[int] = Counter()
    sequential = 0
    sizes = []
    for previous, record in zip([None] + records[:-1], records):
        sizes.append(record.n_pages)
        pages_touched.update(record.pages())
        target = read_counts if not record.is_write else write_counts
        target[record.lpn] += 1
        if previous is not None and record.lpn == previous.lpn + previous.n_pages:
            sequential += 1
    span = records[-1].timestamp_us - records[0].timestamp_us
    return TraceProfile(
        n_requests=n,
        read_fraction=reads / n,
        footprint_pages=len(pages_touched),
        mean_request_pages=float(np.mean(sizes)),
        mean_interarrival_us=span / max(n - 1, 1),
        sequential_fraction=sequential / n,
        read_top5pct_share=_top_share(read_counts),
        write_top5pct_share=_top_share(write_counts),
    )


def _top_share(counts: Counter[int], fraction: float = 0.05) -> float:
    """Traffic share of the most-popular ``fraction`` of targets."""
    if not counts:
        return 0.0
    ranked = sorted(counts.values(), reverse=True)
    top_n = max(1, int(len(ranked) * fraction))
    return sum(ranked[:top_n]) / sum(ranked)


def compare_to_spec(profile: TraceProfile, workload) -> dict[str, tuple[float, float]]:
    """(measured, specified) pairs for the parameters a generator controls.

    ``workload`` is a :class:`~repro.traces.synthetic.SyntheticWorkload`.
    """
    return {
        "read_fraction": (profile.read_fraction, workload.read_fraction),
        "mean_request_pages": (profile.mean_request_pages, workload.mean_request_pages),
        "mean_interarrival_us": (
            profile.mean_interarrival_us,
            workload.mean_interarrival_us,
        ),
    }
