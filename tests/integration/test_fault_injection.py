"""Fault-injection integration: wordlines + drift + ECC end to end.

These tests drive the *functional* path the analytic BER engine models:
bits are programmed into behavioural cell arrays through the real
page/bitline structures, Vth levels are distorted, pages are read back
through the ReduceCode / Gray decode, and an outer ECC recovers the
payload.
"""

import numpy as np
import pytest

from repro.core.bitline import NormalWordline, ReducedWordline
from repro.device.geometry import NandGeometry
from repro.ecc.bch import BchCode
from repro.ecc.ldpc.code import LdpcCode
from repro.ecc.ldpc.decoder import BitFlipDecoder
from repro.errors import DecodingFailure


@pytest.fixture
def geometry():
    return NandGeometry(wordlines_per_block=1, cells_per_wordline=256)


class TestDriftThroughReduceCode:
    def test_drift_injection_produces_fewer_bit_errors_than_cell_errors(
        self, geometry, rng
    ):
        """ReduceCode's distortion-minimization: bit errors stay close
        to the number of distorted cells (not 3x)."""
        wl = ReducedWordline(geometry)
        pages = {
            name: rng.integers(0, 2, wl.page_bits).astype(np.uint8)
            for name in wl.PAGES
        }
        for name in ("lower", "middle", "upper"):
            wl.program_page(name, pages[name])
        distorted = wl.array.inject_drift(rng, downward_rate=0.02)
        bit_errors = sum(
            int((wl.read_page(name) != pages[name]).sum()) for name in wl.PAGES
        )
        assert distorted > 0
        assert bit_errors <= 2 * distorted

    def test_undistorted_wordline_is_error_free(self, geometry, rng):
        wl = ReducedWordline(geometry)
        pages = {
            name: rng.integers(0, 2, wl.page_bits).astype(np.uint8)
            for name in wl.PAGES
        }
        for name in ("lower", "middle", "upper"):
            wl.program_page(name, pages[name])
        for name in wl.PAGES:
            assert np.array_equal(wl.read_page(name), pages[name])


class TestEccRecoversDistortedPages:
    def test_bch_protects_normal_page(self, rng):
        """A Gray-coded page with injected drift decodes cleanly through
        a BCH code sized for the observed error rate."""
        geometry = NandGeometry(wordlines_per_block=1, cells_per_wordline=1024)
        code = BchCode(m=10, t=16, shortened_k=256)
        payload = rng.integers(0, 2, 256).astype(np.uint8)
        codeword = code.encode(payload)
        wl = NormalWordline(geometry)
        page = np.zeros(wl.page_bits, dtype=np.uint8)
        page[: codeword.size] = codeword
        wl.program_page("lower-even", page)
        wl.program_page("upper-even", np.zeros(wl.page_bits, dtype=np.uint8))
        wl.array.inject_drift(rng, downward_rate=0.01)
        read_back = wl.read_page("lower-even")[: codeword.size]
        recovered = code.decode(read_back)
        assert np.array_equal(recovered, payload)

    def test_ldpc_protects_reduced_page(self, rng):
        geometry = NandGeometry(wordlines_per_block=1, cells_per_wordline=1024)
        code = LdpcCode.regular(n=512, wc=3, wr=8, seed=77)
        wl = ReducedWordline(geometry)
        payload = rng.integers(0, 2, code.k).astype(np.uint8)
        codeword = code.encode(payload)
        page = np.zeros(wl.page_bits, dtype=np.uint8)
        page[: code.n] = codeword
        wl.program_page("lower", page)
        wl.program_page("middle", np.zeros(wl.page_bits, dtype=np.uint8))
        wl.program_page("upper", np.zeros(wl.page_bits, dtype=np.uint8))
        wl.array.inject_drift(rng, downward_rate=0.004)
        read_back = wl.read_page("lower")[: code.n]
        try:
            result = BitFlipDecoder(code, max_iterations=100).decode(read_back)
        except DecodingFailure:
            pytest.skip("injected errors exceeded hard-decision capability")
        assert np.array_equal(code.extract_message(result.codeword), payload)

    def test_heavy_drift_defeats_weak_ecc(self, rng):
        """Sanity: the pipeline does fail when drift exceeds capability."""
        geometry = NandGeometry(wordlines_per_block=1, cells_per_wordline=512)
        code = BchCode(m=9, t=2, shortened_k=128)
        payload = rng.integers(0, 2, 128).astype(np.uint8)
        codeword = code.encode(payload)
        wl = NormalWordline(geometry)
        page = np.zeros(wl.page_bits, dtype=np.uint8)
        page[: codeword.size] = codeword
        wl.program_page("lower-even", page)
        wl.program_page("upper-even", np.zeros(wl.page_bits, dtype=np.uint8))
        wl.array.inject_drift(rng, downward_rate=0.30)
        read_back = wl.read_page("lower-even")[: codeword.size]
        with pytest.raises(DecodingFailure):
            out = code.decode(read_back)
            # miscorrection to a different payload also counts as failure
            if not np.array_equal(out, payload):
                raise DecodingFailure("miscorrected")
