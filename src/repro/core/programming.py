"""The two-step reduced-state program algorithm (paper Table 2).

Under the ReduceCode bitline structure the original MLC two-step
program no longer works, so FlexLevel programs each cell pair in two
steps:

1. the two LSBs (the lower page for even pairs, the middle page for
   odd pairs) move each cell from erased (level 0) to its LSB value
   (level 0 or 1);
2. the MSB (the upper page) either leaves the pair untouched (MSB = 0)
   or advances it per Table 2 (MSB = 1):

   ===== ========= ===========================
   MSB   two LSBs  target (Vth I, Vth II)
   ===== ========= ===========================
   1     00        (2, 2)
   1     01        (0, 2)
   1     10        (2, 0)
   1     11        (2, 1)
   ===== ========= ===========================

Every transition only raises Vth — the property that makes the mapping
implementable with ISPP — and the final levels equal the ReduceCode
encoding of the word ``(MSB, LSB1, LSB2)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.reduce_code import REDUCE_CODE_ENCODE
from repro.device.cell import CellArray
from repro.errors import ConfigurationError, ProgramError

#: Table 2 second-step targets: (lsb1, lsb2) -> (Vth I, Vth II) when MSB = 1.
SECOND_STEP_TARGETS: dict[tuple[int, int], tuple[int, int]] = {
    (0, 0): (2, 2),
    (0, 1): (0, 2),
    (1, 0): (2, 0),
    (1, 1): (2, 1),
}


class TwoStepProgrammer:
    """Programs ReduceCode cell pairs in a :class:`CellArray`.

    The array must use 3 levels.  ``pair_indices`` is an ``(n, 2)``
    array of cell indices: column 0 is the first cell (Vth I) of each
    pair, column 1 the second (Vth II).
    """

    def __init__(self, array: CellArray):
        if array.n_levels != 3:
            raise ConfigurationError(
                f"reduced-state programming needs 3-level cells, got {array.n_levels}"
            )
        self.array = array

    def program_lsbs(self, pair_indices: np.ndarray, lsbs: np.ndarray) -> None:
        """First program step: store the two LSBs of each pair.

        ``lsbs`` is an ``(n, 2)`` 0/1 array; each cell is raised from
        level 0 to its LSB value.
        """
        pair_indices, lsbs = self._check_pairs(pair_indices, lsbs)
        current = self.array.read(pair_indices.ravel())
        if np.any(current != 0):
            raise ProgramError("first program step requires erased cells")
        self.array.program(pair_indices.ravel(), lsbs.ravel().astype(np.int8))

    def program_msbs(self, pair_indices: np.ndarray, msbs: np.ndarray) -> None:
        """Second program step: store each pair's MSB.

        MSB = 0 leaves the pair at its LSB levels; MSB = 1 advances the
        pair per Table 2.  The current levels must be a legal first-step
        outcome (each cell at level 0 or 1).
        """
        pair_indices = np.asarray(pair_indices, dtype=np.intp)
        msbs = np.asarray(msbs, dtype=np.uint8)
        if pair_indices.ndim != 2 or pair_indices.shape[1] != 2:
            raise ConfigurationError("pair_indices must have shape (n, 2)")
        if msbs.shape != (pair_indices.shape[0],):
            raise ConfigurationError("msbs must have one bit per pair")
        if msbs.size and msbs.max() > 1:
            raise ConfigurationError("msbs must be 0/1")
        current = self.array.read(pair_indices.ravel()).reshape(-1, 2)
        if np.any(current > 1):
            raise ProgramError(
                "second program step found a cell above level 1 — "
                "the upper page was already programmed"
            )
        targets = current.copy()
        selected = msbs == 1
        for row in np.flatnonzero(selected):
            lsb_pair = (int(current[row, 0]), int(current[row, 1]))
            targets[row] = SECOND_STEP_TARGETS[lsb_pair]
        self.array.program(pair_indices.ravel(), targets.ravel().astype(np.int8))

    def program_words(self, pair_indices: np.ndarray, words: np.ndarray) -> None:
        """Convenience: run both steps for 3-bit words ``(MSB, LSB1, LSB2)``."""
        words = np.asarray(words)
        if words.ndim != 1 or (words.size and (words.min() < 0 or words.max() > 7)):
            raise ConfigurationError("words must be 3-bit values")
        lsbs = np.stack([(words >> 1) & 1, words & 1], axis=1)
        msbs = ((words >> 2) & 1).astype(np.uint8)
        self.program_lsbs(pair_indices, lsbs)
        self.program_msbs(pair_indices, msbs)

    def verify_against_table1(self, pair_indices: np.ndarray, words: np.ndarray) -> bool:
        """True if the programmed levels equal the Table 1 encoding."""
        pair_indices = np.asarray(pair_indices, dtype=np.intp)
        words = np.asarray(words)
        levels = self.array.read(pair_indices.ravel()).reshape(-1, 2)
        for row, word in enumerate(words):
            if tuple(levels[row]) != REDUCE_CODE_ENCODE[int(word)]:
                return False
        return True

    def _check_pairs(
        self, pair_indices: np.ndarray, bits: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        pair_indices = np.asarray(pair_indices, dtype=np.intp)
        bits = np.asarray(bits, dtype=np.uint8)
        if pair_indices.ndim != 2 or pair_indices.shape[1] != 2:
            raise ConfigurationError("pair_indices must have shape (n, 2)")
        if bits.shape != pair_indices.shape:
            raise ConfigurationError("bits must match pair_indices' shape")
        if bits.size and bits.max() > 1:
            raise ConfigurationError("bits must be 0/1")
        flat = pair_indices.ravel()
        if flat.size != np.unique(flat).size:
            raise ConfigurationError("pair_indices contain duplicate cells")
        return pair_indices, bits
