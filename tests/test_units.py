"""Tests for unit helpers and the error hierarchy."""

import pytest

from repro import errors, units


class TestUnits:
    def test_capacity_constants(self):
        assert units.KIB == 1024
        assert units.MIB == 1024**2
        assert units.GIB == 1024**3

    def test_time_constants(self):
        assert units.HOUR_US == 3_600_000_000.0
        assert units.MONTH == 720.0
        assert units.WEEK == 168.0

    def test_hours_us_roundtrip(self):
        assert units.us_to_hours(units.hours_to_us(5.5)) == pytest.approx(5.5)

    def test_bytes_to_pages_rounds_up(self):
        assert units.bytes_to_pages(1, 4096) == 1
        assert units.bytes_to_pages(4096, 4096) == 1
        assert units.bytes_to_pages(4097, 4096) == 2
        assert units.bytes_to_pages(0, 4096) == 0

    def test_bytes_to_pages_validation(self):
        with pytest.raises(ValueError):
            units.bytes_to_pages(-1, 4096)
        with pytest.raises(ValueError):
            units.bytes_to_pages(10, 0)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.ConfigurationError, errors.ReproError)
        assert issubclass(errors.ProgramError, errors.DeviceError)
        assert issubclass(errors.DecodingFailure, errors.EccError)
        assert issubclass(errors.OutOfSpaceError, errors.FtlError)
        assert issubclass(errors.TraceFormatError, errors.ReproError)

    def test_decoding_failure_carries_iterations(self):
        failure = errors.DecodingFailure("gave up", iterations=30)
        assert failure.iterations == 30
        assert errors.DecodingFailure("gave up").iterations is None

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.OutOfSpaceError("full")
