"""Workload traces.

The paper evaluates on seven block traces (fin-2 OLTP, web-1/2 search,
prj-1/2 project, win-1/2 PC).  The originals are not redistributable,
so :mod:`repro.traces.synthetic` generates seeded synthetic equivalents
whose read/write mix, Zipf skew, footprint and sequentiality match each
trace's published character (see DESIGN.md's substitution table), and
:mod:`repro.traces.workloads` names the seven presets.
"""

from repro.traces.schema import TraceRecord
from repro.traces.io import read_trace_csv, write_trace_csv
from repro.traces.stats import TraceProfile, compare_to_spec, profile_trace
from repro.traces.synthetic import SyntheticWorkload
from repro.traces.workloads import PAPER_WORKLOADS, make_workload, workload_names

__all__ = [
    "TraceRecord",
    "read_trace_csv",
    "write_trace_csv",
    "SyntheticWorkload",
    "TraceProfile",
    "compare_to_spec",
    "profile_trace",
    "PAPER_WORKLOADS",
    "make_workload",
    "workload_names",
]
