"""Tests for the generalized pair code (ReduceCode for any level count)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pair_code import (
    build_pair_code,
    density_summary,
    gray_sequence,
    optimize_pair_code,
    slip_cost,
    snake_order,
    staged_program_plan,
)
from repro.core.reduce_code import ReduceCodeCoding
from repro.errors import ConfigurationError


class TestPrimitives:
    def test_gray_sequence_adjacent_differ_one_bit(self):
        seq = gray_sequence(4)
        assert len(seq) == 16
        assert len(set(seq)) == 16
        for a, b in zip(seq, seq[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_snake_order_covers_grid(self):
        order = snake_order(4)
        assert len(order) == 16
        assert len(set(order)) == 16

    def test_snake_consecutive_are_grid_neighbors(self):
        for n in (3, 5):
            order = snake_order(n)
            for (r1, c1), (r2, c2) in zip(order, order[1:]):
                assert abs(r1 - r2) + abs(c1 - c2) == 1

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            snake_order(1)
        with pytest.raises(ConfigurationError):
            gray_sequence(-1)


class TestBuildPairCode:
    @pytest.mark.parametrize("n_levels,bits", [(3, 3), (4, 4), (6, 5), (7, 5), (12, 7)])
    def test_bit_capacity(self, n_levels, bits):
        coding = build_pair_code(n_levels)
        assert coding.bits_per_group == bits
        assert coding.cells_per_group == 2

    def test_matches_paper_density_at_three_levels(self):
        coding = build_pair_code(3)
        assert coding.density_bits_per_cell() == pytest.approx(
            ReduceCodeCoding().density_bits_per_cell()
        )

    def test_tlc_density_loss_below_mlc_loss(self):
        """The future-work payoff: reduced-TLC loses 16.7 %, less than
        the paper's 25 % at MLC."""
        tlc = density_summary(6)
        assert tlc["pair_bits_per_cell"] == pytest.approx(2.5)
        assert 1 - tlc["pair_bits_per_cell"] / 3.0 == pytest.approx(1 / 6, rel=1e-9)

    def test_decode_covers_all_combinations(self):
        for n_levels in (3, 5, 6):
            coding = build_pair_code(n_levels)
            assert len(coding.decode_table) == n_levels**2

    def test_full_grid_is_perfectly_gray(self):
        """Power-of-two grids use every combination: every slip costs
        exactly one bit."""
        mean, worst = slip_cost(build_pair_code(4))
        assert worst == 1
        assert mean == pytest.approx(1.0)

    def test_unused_combos_decode_to_neighbors(self):
        coding = build_pair_code(3)
        used = set(coding.encode_table.values())
        for combo in itertools.product(range(3), repeat=2):
            if combo in used:
                continue
            word = coding.decode_table[combo]
            source = coding.encode_table[word]
            distance = abs(source[0] - combo[0]) + abs(source[1] - combo[1])
            assert distance == 1


class TestOptimizer:
    def test_reaches_paper_quality_at_three_levels(self):
        optimized = optimize_pair_code(3, iterations=1500)
        _, worst = slip_cost(optimized)
        _, paper_worst = slip_cost(ReduceCodeCoding())
        assert worst <= paper_worst

    def test_never_worse_than_snake(self):
        for n_levels in (3, 6):
            snake_cost = slip_cost(build_pair_code(n_levels))
            opt_cost = slip_cost(optimize_pair_code(n_levels, iterations=400))
            assert (opt_cost[1], opt_cost[0]) <= (snake_cost[1], snake_cost[0])

    def test_deterministic(self):
        a = optimize_pair_code(6, iterations=200, seed=3)
        b = optimize_pair_code(6, iterations=200, seed=3)
        assert a.encode_table == b.encode_table

    def test_rejects_negative_iterations(self):
        with pytest.raises(ConfigurationError):
            optimize_pair_code(3, iterations=-1)


@settings(max_examples=15, deadline=None)
@given(n_levels=st.integers(3, 9), seed=st.integers(0, 2**31 - 1))
def test_property_roundtrip_through_pair_code(n_levels, seed):
    coding = build_pair_code(n_levels)
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 1 << coding.bits_per_group, size=50)
    for word in words:
        levels = coding.encode_table[int(word)]
        assert coding.decode_table[levels] == word


class TestStagedProgramPlan:
    @pytest.mark.parametrize("n_levels", [3, 4, 6, 7])
    def test_all_transitions_upward(self, n_levels):
        coding = build_pair_code(n_levels)
        passes = staged_program_plan(coding)
        assert len(passes) == n_levels - 1
        previous = {word: (0, 0) for word in coding.encode_table}
        for step in passes:
            for word, levels in step.items():
                assert levels[0] >= previous[word][0]
                assert levels[1] >= previous[word][1]
            previous = step

    @pytest.mark.parametrize("n_levels", [3, 6])
    def test_final_pass_reaches_encoding(self, n_levels):
        coding = build_pair_code(n_levels)
        final = staged_program_plan(coding)[-1]
        assert final == coding.encode_table

    def test_executable_on_cell_array(self, rng):
        """Drive a real CellArray through the staged plan (the paper's
        two-step algorithm, generalized)."""
        from repro.device.cell import CellArray

        coding = optimize_pair_code(6, iterations=200)
        words = rng.integers(0, 1 << coding.bits_per_group, size=16)
        array = CellArray(32, 6)
        pairs = np.arange(32).reshape(-1, 2)
        for step in staged_program_plan(coding):
            targets = np.array([step[int(w)] for w in words])
            array.program(pairs.ravel(), targets.ravel().astype(np.int8))
        read = array.read(pairs.ravel()).reshape(-1, 2)
        for row, word in enumerate(words):
            assert tuple(read[row]) == coding.encode_table[int(word)]
