"""§6.1's reliability frame: Eq. 1 UBER at the paper's operating points.

Paper setup: target UBER 1e-15, rate-8/9 LDPC on 4 KB blocks.  This
bench regenerates the required-correction-strength curve over the BER
range Table 4 spans and verifies the 1e-15 target is reachable
everywhere with a bounded correction budget.
"""

from conftest import write_table

from repro.device.uber import (
    LDPC_CODEWORD_BITS,
    LDPC_INFO_BITS,
    TARGET_UBER,
    required_correctable_bits,
    uber,
)


def test_uber_requirements(benchmark, results_dir, bench_case):
    bers = (1e-4, 5e-4, 1e-3, 4e-3, 1e-2, 1.6e-2)

    def run():
        return {p: required_correctable_bits(p) for p in bers}

    required = benchmark(run)

    lines = [
        f"rate-8/9 LDPC, k={LDPC_INFO_BITS} info bits, "
        f"n={LDPC_CODEWORD_BITS} codeword bits, target UBER {TARGET_UBER:.0e}",
        "",
        "raw BER    required correctable bits   achieved UBER",
    ]
    for p in bers:
        k = required[p]
        achieved = uber(k, LDPC_CODEWORD_BITS, LDPC_INFO_BITS, p)
        lines.append(f"{p:8.1e}  {k:26d}   {achieved:.2e}")
    write_table(results_dir, "uber_requirements", lines)

    bench_case.emit(
        {
            "required_bits_at_1e3": required[1e-3],
            "required_bits_at_corner": required[1.6e-2],
        },
        table="uber_requirements",
    )

    values = [required[p] for p in bers]
    assert values == sorted(values)  # correction need grows with BER
    # At the Table-4 corner (1.6e-2) the budget stays bounded but large —
    # the regime where hard-decision BCH stops being practical.
    assert 400 < required[1.6e-2] < 1200
    for p in bers:
        assert uber(required[p], LDPC_CODEWORD_BITS, LDPC_INFO_BITS, p) <= TARGET_UBER
