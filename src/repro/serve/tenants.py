"""Tenant populations and their seeded arrival streams.

A *tenant* is one simulated client of the device: a workload
personality (one of the paper presets in
:mod:`repro.traces.workloads`), an arrival discipline (open-loop
Poisson or closed-loop think-time), a rate multiplier, a weight for
fair-share scheduling, an SLO, and a bounded submission-queue depth.

Streams are seeded the way :class:`repro.faults.FaultInjector` seeds
its four fault streams: one root :class:`numpy.random.SeedSequence`
spawns an independent child per tenant, so

* the same ``(seed, mix)`` reproduces every tenant's request sequence
  byte for byte,
* adding or re-ordering *other* tenants never perturbs a tenant's own
  stream (each child is keyed by the tenant's index), and
* none of it shares state with the fault injector's or the read-retry
  model's RNGs (``tests/serve/`` pins the independence).

Rates are normalized for fleet scale: a preset's published
``mean_interarrival_us`` describes the *aggregate* trace, so one
tenant of `n` issues at ``n / rate_x`` times that interval — a mix of
100 plain tenants offers roughly the preset's aggregate load, and a
``rate_x=10`` noisy neighbor offers ten tenants' worth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.schema import TraceRecord
from repro.traces.synthetic import SyntheticWorkload
from repro.traces.workloads import PAPER_WORKLOADS, workload_names

#: Default per-tenant submission-queue depth (NVMe queues are typically
#: a few hundred to a few thousand entries).
DEFAULT_SQ_DEPTH = 256

#: Default per-tenant SLO on request response time.
DEFAULT_SLO_US = 2_000.0


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity and traffic contract.

    Attributes
    ----------
    tenant_id:
        Dense index in the mix (also the RNG spawn key).
    workload:
        Paper workload preset the arrival stream is built on.
    n_requests:
        Requests this tenant submits over the run.
    rate_x:
        Arrival-rate multiplier (10.0 = the noisy neighbor issuing at
        ten times its fair rate).  Open loop only.
    weight:
        Fair-share weight for the weighted-fair scheduler.
    slo_us:
        Response-time SLO; completions above it count as violations.
    sq_depth:
        Submission-queue bound; submissions that find the queue full
        are rejected (counted, never silently dropped).
    closed_loop:
        Closed-loop tenants wait for each completion, think for an
        exponential time, then submit the next request; open-loop
        tenants submit on their own Poisson clock regardless.
    think_us:
        Mean think time of a closed-loop tenant.
    """

    tenant_id: int
    workload: str
    n_requests: int
    rate_x: float = 1.0
    weight: float = 1.0
    slo_us: float = DEFAULT_SLO_US
    sq_depth: int = DEFAULT_SQ_DEPTH
    closed_loop: bool = False
    think_us: float = 1_000.0

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ConfigurationError(f"negative tenant id: {self.tenant_id}")
        if self.workload not in PAPER_WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"choose from {workload_names()}"
            )
        if self.n_requests <= 0:
            raise ConfigurationError("tenant needs at least one request")
        if self.rate_x <= 0:
            raise ConfigurationError(f"non-positive rate_x: {self.rate_x}")
        if self.weight <= 0:
            raise ConfigurationError(f"non-positive weight: {self.weight}")
        if self.slo_us <= 0:
            raise ConfigurationError(f"non-positive slo_us: {self.slo_us}")
        if self.sq_depth < 1:
            raise ConfigurationError(f"sq_depth below 1: {self.sq_depth}")
        if self.think_us < 0:
            raise ConfigurationError(f"negative think_us: {self.think_us}")

    @property
    def name(self) -> str:
        """Metric-grammar-safe tenant label (``t0``, ``t1``, ...)."""
        return f"t{self.tenant_id}"


def parse_mix(
    mix: str,
    n_requests: int,
    slo_us: float = DEFAULT_SLO_US,
    sq_depth: int = DEFAULT_SQ_DEPTH,
    n_tenants: int | None = None,
) -> list[TenantSpec]:
    """Parse a tenant-mix string into a tenant population.

    Grammar: comma-separated groups ``preset[:count[:rate_x]][@closed]``
    — e.g. ``"fin-2:7,fin-2:1:10"`` is seven plain fin-2 tenants plus
    one noisy neighbor at ten times the rate, and ``"web-1:4@closed"``
    is four closed-loop web tenants.  ``n_tenants`` rescales the group
    counts proportionally (each group keeps at least one tenant) so
    the same mix shape can be run at 8 or 800 tenants.
    """
    if not mix.strip():
        raise ConfigurationError("empty tenant mix")
    groups: list[tuple[str, int, float, bool]] = []
    for chunk in mix.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise ConfigurationError(f"empty group in tenant mix {mix!r}")
        closed = chunk.endswith("@closed")
        if closed:
            chunk = chunk[: -len("@closed")]
        parts = chunk.split(":")
        if len(parts) > 3:
            raise ConfigurationError(
                f"tenant-mix group {chunk!r} is not preset[:count[:rate_x]]"
            )
        preset = parts[0]
        if preset not in PAPER_WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {preset!r} in tenant mix; "
                f"choose from {workload_names()}"
            )
        try:
            count = int(parts[1]) if len(parts) > 1 else 1
            rate_x = float(parts[2]) if len(parts) > 2 else 1.0
        except ValueError as exc:
            raise ConfigurationError(
                f"bad tenant-mix group {chunk!r}: {exc}"
            ) from None
        if count < 1:
            raise ConfigurationError(f"group {chunk!r} count below 1")
        groups.append((preset, count, rate_x, closed))

    if n_tenants is not None:
        total = sum(count for _, count, _, _ in groups)
        if n_tenants < len(groups):
            raise ConfigurationError(
                f"--tenants {n_tenants} below the {len(groups)} mix groups"
            )
        scaled = [
            max(1, round(count * n_tenants / total)) for _, count, _, _ in groups
        ]
        # Rounding drift lands on the largest group so totals match.
        drift = n_tenants - sum(scaled)
        scaled[scaled.index(max(scaled))] += drift
        groups = [
            (preset, new_count, rate_x, closed)
            for (preset, _, rate_x, closed), new_count in zip(groups, scaled)
        ]

    specs: list[TenantSpec] = []
    for preset, count, rate_x, closed in groups:
        for _ in range(count):
            specs.append(
                TenantSpec(
                    tenant_id=len(specs),
                    workload=preset,
                    n_requests=n_requests,
                    rate_x=rate_x,
                    slo_us=slo_us,
                    sq_depth=sq_depth,
                    closed_loop=closed,
                )
            )
    return specs


@dataclass(frozen=True)
class TenantRequest:
    """One submission a tenant stream produced.

    ``gap_us`` is the stream's own spacing: the interarrival time
    since the tenant's previous *submission* (open loop) or the think
    time after the previous *completion* (closed loop).
    """

    tenant_id: int
    seq: int
    gap_us: float
    lpn: int
    n_pages: int
    is_write: bool


class TenantStream:
    """One tenant's pre-generated, seeded request sequence.

    The payload (targets, sizes, read/write) comes from the tenant's
    workload preset via :class:`~repro.traces.synthetic.SyntheticWorkload`
    — same Zipf machinery as the trace benchmarks — addressed into a
    tenant-private base offset so tenants touch distinct hot sets.
    Timing is separated from payload: the stream exposes *gaps*, and
    the serving engine turns them into submissions (open loop) or
    post-completion think times (closed loop).
    """

    def __init__(
        self,
        spec: TenantSpec,
        seed_seq: np.random.SeedSequence,
        logical_pages: int,
        n_tenants: int,
    ):
        if logical_pages <= 0:
            raise ConfigurationError("logical_pages must be positive")
        if n_tenants < 1:
            raise ConfigurationError("n_tenants must be at least 1")
        self.spec = spec
        preset = PAPER_WORKLOADS[spec.workload]
        footprint = max(4, int(preset.footprint_fraction * logical_pages))
        # One tenant of n offers 1/n of the preset's aggregate rate,
        # scaled back up by its own rate multiplier.
        if spec.closed_loop:
            mean_gap = max(spec.think_us, 1e-6)
        else:
            mean_gap = preset.mean_interarrival_us * n_tenants / spec.rate_x
        workload = SyntheticWorkload(
            name=preset.name,
            footprint_pages=min(footprint, logical_pages),
            read_fraction=preset.read_fraction,
            read_zipf_s=preset.read_zipf_s,
            write_zipf_s=preset.write_zipf_s,
            mean_request_pages=preset.mean_request_pages,
            sequential_fraction=preset.sequential_fraction,
            mean_interarrival_us=mean_gap,
        )
        # Spread tenant hot sets across the logical space; the engine
        # wraps LPNs into the system footprint.
        self.base_lpn = (
            spec.tenant_id * max(1, logical_pages // n_tenants)
        ) % logical_pages
        records = workload.generate(spec.n_requests, seed=seed_seq)
        self.requests: tuple[TenantRequest, ...] = tuple(
            TenantRequest(
                tenant_id=spec.tenant_id,
                seq=i,
                gap_us=float(
                    record.timestamp_us
                    - (records[i - 1].timestamp_us if i else 0.0)
                ),
                lpn=(self.base_lpn + record.lpn) % logical_pages,
                n_pages=record.n_pages,
                is_write=record.is_write,
            )
            for i, record in enumerate(records)
        )

    def __len__(self) -> int:
        return len(self.requests)

    def record_at(self, seq: int, dispatch_us: float) -> TraceRecord:
        """The ``seq``-th request as a trace record dispatched now."""
        req = self.requests[seq]
        return TraceRecord(
            timestamp_us=dispatch_us,
            lpn=req.lpn,
            n_pages=req.n_pages,
            is_write=req.is_write,
        )

    def signature(self) -> tuple[tuple[int, float, int, int, bool], ...]:
        """Hashable byte-equality key over the full request sequence."""
        return tuple(
            (r.seq, r.gap_us, r.lpn, r.n_pages, r.is_write)
            for r in self.requests
        )


def spawn_streams(
    specs: list[TenantSpec], seed: int, logical_pages: int
) -> list[TenantStream]:
    """Build every tenant's stream from independent spawned RNG streams."""
    if not specs:
        raise ConfigurationError("no tenants in the mix")
    ids = [spec.tenant_id for spec in specs]
    if ids != list(range(len(specs))):
        specs = [
            replace(spec, tenant_id=i) for i, spec in enumerate(specs)
        ]
    children = np.random.SeedSequence(seed).spawn(len(specs))
    return [
        TenantStream(spec, child, logical_pages, len(specs))
        for spec, child in zip(specs, children)
    ]
