"""ReduceCode: 3 bits in two 3-level cells (paper Table 1).

A reduced-state cell has three Vth levels, so two cells span nine level
combinations; ReduceCode uses eight of them to store 3 bits — 1.5 bits
per cell instead of 1 bit with plain Gray coding, holding the capacity
loss of level reduction at 25 %.

Like Gray code, the mapping is distortion-minimizing: a single one-level
Vth slip in either cell changes the decoded word by (almost always) one
bit.  The only exception involves the unused combination (1, 2): it is
decoded as 101, which recovers perfectly the most common way of
reaching it (a retention down-slip of (2,2)->(1,2) costs 1 bit, an
interference up-slip (0,2)->(1,2) costs 0) and costs two bits only for
the rare (1,1)->(1,2) up-slip of an already-high second cell.

Bit convention: a 3-bit word ``b2 b1 b0`` has ``b2`` = the MSB (upper
page) and ``b1 b0`` = the two LSBs (lower/middle page), matching the
two-step program algorithm of paper Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.device.coding import TableCoding
from repro.errors import ConfigurationError

#: Paper Table 1: 3-bit word -> (Vth I, Vth II).
REDUCE_CODE_ENCODE: dict[int, tuple[int, int]] = {
    0b000: (0, 0),
    0b001: (0, 1),
    0b010: (1, 0),
    0b011: (1, 1),
    0b100: (2, 2),
    0b101: (0, 2),
    0b110: (2, 0),
    0b111: (2, 1),
}

#: Full decode table including the unused combination (1, 2) -> 101.
REDUCE_CODE_DECODE: dict[tuple[int, int], int] = {
    levels: word for word, levels in REDUCE_CODE_ENCODE.items()
}
REDUCE_CODE_DECODE[(1, 2)] = 0b101

#: Fraction of cells at each Vth level under random data (levels 0/1/2
#: appear 6/5/5 times across the 16 cell slots of the eight codewords).
REDUCE_CODE_LEVEL_USAGE: tuple[float, float, float] = (6 / 16, 5 / 16, 5 / 16)

_ENCODE_LUT = np.array([REDUCE_CODE_ENCODE[w] for w in range(8)], dtype=np.int8)
_DECODE_LUT = np.full((3, 3), -1, dtype=np.int8)
for _levels, _word in REDUCE_CODE_DECODE.items():
    _DECODE_LUT[_levels] = _word


class ReduceCodeCoding(TableCoding):
    """ReduceCode as a :class:`~repro.device.coding.CellCoding`."""

    def __init__(self) -> None:
        super().__init__(
            encode_table={w: lv for w, lv in REDUCE_CODE_ENCODE.items()},
            decode_table=dict(REDUCE_CODE_DECODE),
            n_levels=3,
        )


def encode_bits(bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode a bit array (length divisible by 3) into cell-level pairs.

    Bits are consumed three at a time as ``(MSB, LSB1, LSB2)``; the
    return value is ``(levels_I, levels_II)`` for the first and second
    cell of each pair.
    """
    bits = _as_bits(bits)
    if bits.size % 3 != 0:
        raise ConfigurationError(
            f"bit count {bits.size} not divisible by 3 — ReduceCode packs 3 bits/pair"
        )
    groups = bits.reshape(-1, 3)
    words = (groups[:, 0].astype(np.int16) << 2) | (groups[:, 1] << 1) | groups[:, 2]
    pairs = _ENCODE_LUT[words]
    return pairs[:, 0].copy(), pairs[:, 1].copy()


def decode_levels(levels_i: np.ndarray, levels_ii: np.ndarray) -> np.ndarray:
    """Decode cell-level pairs back into a bit array.

    Every combination of levels decodes (the unused (1, 2) maps to 101),
    so distorted cells still yield a best-effort word for the outer ECC.
    """
    levels_i = np.asarray(levels_i, dtype=np.int8)
    levels_ii = np.asarray(levels_ii, dtype=np.int8)
    if levels_i.shape != levels_ii.shape or levels_i.ndim != 1:
        raise ConfigurationError("level arrays must be 1-D and the same length")
    if levels_i.size and (
        levels_i.min() < 0
        or levels_i.max() > 2
        or levels_ii.min() < 0
        or levels_ii.max() > 2
    ):
        raise ConfigurationError("reduced-state levels must be in {0, 1, 2}")
    words = _DECODE_LUT[levels_i, levels_ii].astype(np.uint8)
    bits = np.empty(words.size * 3, dtype=np.uint8)
    bits[0::3] = (words >> 2) & 1
    bits[1::3] = (words >> 1) & 1
    bits[2::3] = words & 1
    return bits


def single_slip_bit_errors() -> dict[tuple[int, int, int], int]:
    """Bit errors caused by every possible single one-level slip.

    Returns a mapping ``(word, cell_index, new_level) -> bit_errors``
    covering each used codeword and each +-1 slip of either cell.  Used
    by the property tests verifying the paper's distortion claim.
    """
    outcomes: dict[tuple[int, int, int], int] = {}
    for word, levels in REDUCE_CODE_ENCODE.items():
        for cell_index in range(2):
            for delta in (-1, 1):
                new_level = levels[cell_index] + delta
                if not 0 <= new_level <= 2:
                    continue
                slipped = list(levels)
                slipped[cell_index] = new_level
                decoded = REDUCE_CODE_DECODE[tuple(slipped)]
                outcomes[(word, cell_index, new_level)] = bin(word ^ decoded).count("1")
    return outcomes


def _as_bits(bits: np.ndarray) -> np.ndarray:
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ConfigurationError("bits must be a 1-D array")
    if bits.size and bits.max() > 1:
        raise ConfigurationError("bits must be 0/1")
    return bits
