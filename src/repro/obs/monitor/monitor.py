"""Online health monitor: windows in, alerts (with blame tables) out.

:class:`HealthMonitor` attaches to a :class:`WindowedRecorder` via the
window-close hook and evaluates, on every closed window of *virtual*
time:

* the change-point rules (:mod:`repro.obs.monitor.rules` — CUSUM /
  Page–Hinkley over the wear-drift series), and
* the burn-rate rules (:mod:`repro.obs.monitor.burnrate` — per-tenant
  request-level burn on serve runs, window-tail burn on plain sims).

When a rule fires, the monitor snapshots an attribution drill-down
**restricted to the offending window** from the tracer's retained
spans — every alert carries its own blame table, not a pointer to a
post-hoc tool.  Because windows close in virtual time and every input
is deterministic, the alert stream is byte-identical across repeated
runs of the same seed/config; ``monitor_fingerprint`` hashes the
artifact under the PR 7 convention (wall-clock fields excluded) so
cross-machine equality is one string comparison.

The monitor is an *observer*: it never touches the engine, the RNG
streams, or the recorder's contents, so attaching it leaves the
simulation results byte-identical to an unmonitored run (pinned in
tests/obs/test_monitor.py).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.obs.attribution import AttributionReport
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor.burnrate import (
    DEFAULT_MIN_TOTAL,
    DEFAULT_PAIRS,
    BurnRateRule,
    TailBurnSource,
    TenantBurnSource,
)
from repro.obs.monitor.rules import ChangePointRule, default_rules
from repro.obs.timeseries import WindowedRecorder
from repro.obs.tracing import Tracer

SCHEMA = "repro.monitor/1"

#: Alert records kept in full; later alerts still count but only the
#: rule/window fields are retained (an alert storm must not make the
#: artifact unbounded).
MAX_ALERTS = 512

#: Series whose nonzero observation marks read-only degraded mode.
#: ``ftl.degraded.read_only`` is sampled 1.0 at the degradation
#: instant; ``sim.degraded.read_only`` is the engines' per-completion
#: gauge of the same flag.
DEGRADED_SERIES = ("ftl.degraded.read_only", "sim.degraded.read_only")


@dataclass(frozen=True)
class MonitorConfig:
    """Deterministic monitor configuration (hashed into the artifact).

    ``slo_us`` arms window-tail burn-rate alerting on plain sim runs;
    ``None`` leaves only the change-point rules active there.  Serve
    runs always arm request-level burn per tenant (each tenant's SLO
    bound comes from its spec, not from here).
    """

    slo_us: float | None = None
    slo_target: float = 0.999
    burn_pairs: tuple[tuple[str, int, int, float], ...] = DEFAULT_PAIRS
    burn_min_total: float = DEFAULT_MIN_TOTAL
    warmup_windows: int = 8
    blame_lookback_windows: int = 8
    max_alerts: int = MAX_ALERTS

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo_us": self.slo_us,
            "slo_target": self.slo_target,
            "burn_pairs": [list(pair) for pair in self.burn_pairs],
            "burn_min_total": self.burn_min_total,
            "warmup_windows": self.warmup_windows,
            "blame_lookback_windows": self.blame_lookback_windows,
            "max_alerts": self.max_alerts,
        }


@dataclass
class Alert:
    """One firing: rule identity, window, evidence, blame table."""

    seq: int
    kind: str  # "change_point" | "burn_rate"
    rule: str
    window: int
    start_us: float
    end_us: float
    severity: str
    evidence: dict[str, Any]
    blame: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "rule": self.rule,
            "window": self.window,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "severity": self.severity,
            "evidence": self.evidence,
            "blame": self.blame,
        }


class HealthMonitor:
    """Evaluates alert rules on every closed virtual-time window.

    Parameters
    ----------
    recorder:
        The windowed recorder both engines emit into.  ``attach()``
        registers the close hook; construct the monitor *before* the
        run so no windows are missed.
    registry:
        Optional metrics registry; the monitor publishes its own
        ``monitor.*`` counters/gauges there (they ride along into
        manifests and the Prometheus export).
    tracer:
        Optional tracer whose retained spans feed the per-alert blame
        snapshot.  Without one, alerts carry ``blame: null``.
    rules:
        Change-point rules; defaults to :func:`default_rules`.
    tenants:
        Tenant names (serve runs) for request-level burn sources.
    config:
        :class:`MonitorConfig`; defaults are alert-silent on a healthy
        fault-free run (regression-gated in the detection bench).
    """

    def __init__(
        self,
        recorder: WindowedRecorder,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        rules: list[ChangePointRule] | None = None,
        tenants: list[str] | None = None,
        config: MonitorConfig | None = None,
    ):
        self.config = config or MonitorConfig()
        self.recorder = recorder
        self.registry = registry
        self.tracer = tracer
        self.rules = (
            rules
            if rules is not None
            else default_rules(warmup=self.config.warmup_windows)
        )
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate rule names: {names}")
        self._burn: list[tuple[Any, BurnRateRule]] = []
        if tenants:
            # Serve runs: the per-tenant SLO lives in the tenant spec
            # (the windowed slo_violations series already encodes it),
            # so request-level burn is always armed.
            for tenant in tenants:
                self._burn.append(
                    (
                        TenantBurnSource(tenant),
                        self._burn_rule(f"burn.{tenant}"),
                    )
                )
        elif self.config.slo_us is not None:
            self._burn.append(
                (
                    TailBurnSource(self.config.slo_us),
                    self._burn_rule("burn.tail"),
                )
            )
        self.alerts: list[Alert] = []
        self.n_alerts = 0  # includes alerts beyond max_alerts
        self.windows_closed = 0
        self.last_window: tuple[int, float, float] | None = None
        self._attached = False
        self._terminal_emitted = False
        self._observers: list[Callable[["HealthMonitor"], None]] = []

    def _burn_rule(self, name: str) -> BurnRateRule:
        return BurnRateRule(
            name,
            slo_target=self.config.slo_target,
            pairs=self.config.burn_pairs,
            min_total=self.config.burn_min_total,
        )

    # --- wiring -----------------------------------------------------------------

    def attach(self) -> "HealthMonitor":
        """Register the recorder close and flush hooks (idempotent)."""
        if not self._attached:
            self.recorder.add_close_hook(self._window_closed)
            self.recorder.add_flush_hook(self._run_flushed)
            self._attached = True
        return self

    def add_observer(
        self, observer: Callable[["HealthMonitor"], None]
    ) -> None:
        """Called after every evaluated window (TTY status view)."""
        self._observers.append(observer)

    # --- evaluation -------------------------------------------------------------

    def _window_closed(
        self, index: int, start_us: float, end_us: float
    ) -> None:
        self.windows_closed += 1
        self.last_window = (index, start_us, end_us)
        for rule in self.rules:
            alarm = rule.observe(self.recorder, index)
            if alarm is not None:
                self._record(
                    kind="change_point",
                    rule=rule.name,
                    index=index,
                    start_us=start_us,
                    end_us=end_us,
                    severity=self._severity(alarm.score, alarm.threshold),
                    evidence={
                        **alarm.to_dict(),
                        "series": rule.series,
                        "signal": rule.signal,
                    },
                )
        for source, burn in self._burn:
            bad, total = source.bad_total(self.recorder, index)
            for alarm in burn.update(bad, total):
                self._record(
                    kind="burn_rate",
                    rule=f"{burn.name}.{alarm.pair}",
                    index=index,
                    start_us=start_us,
                    end_us=end_us,
                    severity="page" if alarm.pair == "fast" else "ticket",
                    evidence={
                        **alarm.to_dict(),
                        "slo_target": burn.slo_target,
                    },
                )
        if self.registry is not None:
            self.registry.counter("monitor.windows").inc()
            self.registry.gauge("monitor.alerts.total").set(self.n_alerts)
        for observer in self._observers:
            observer(self)

    def _degraded_onset(self) -> tuple[str, int] | None:
        """Earliest window where a degraded-mode series went nonzero."""
        best: tuple[str, int] | None = None
        for series in DEGRADED_SERIES:
            for row in self.recorder.rows(series):
                if row["max"] > 0.0:
                    if best is None or row["window"] < best[1]:
                        best = (series, int(row["window"]))
                    break
        return best

    def _run_flushed(self) -> None:
        """End-of-run verdict: terminal ``degraded`` alert.

        The change-point ``degraded`` rule only sees *closed* windows
        and needs its detector to accumulate past warmup — a drive that
        drops to read-only in the trailing partial window (or right at
        a crash cut) could end the run without a single alert saying
        so.  The flush hook fires after every window, partial ones
        included, has closed: if any degraded-mode series ever went
        nonzero, exactly one terminal alert is emitted with a blame
        snapshot of the final window (falling back to the trailing
        lookback when the partial window retained no spans).
        """
        if self._terminal_emitted:
            return
        onset = self._degraded_onset()
        if onset is None:
            return
        self._terminal_emitted = True
        series, first_window = onset
        index = max(self.recorder.closed_through - 1, first_window)
        start_us = self.recorder.origin_us + index * self.recorder.window_us
        end_us = start_us + self.recorder.window_us
        self._record(
            kind="degraded",
            rule="terminal.degraded",
            index=index,
            start_us=start_us,
            end_us=end_us,
            severity="page",
            evidence={
                "series": series,
                "first_degraded_window": first_window,
                "first_degraded_us": (
                    self.recorder.origin_us
                    + first_window * self.recorder.window_us
                ),
                "windows_closed": self.windows_closed,
            },
        )

    @staticmethod
    def _severity(score: float, threshold: float) -> str:
        return "page" if score > 2.0 * threshold else "ticket"

    def _record(
        self,
        kind: str,
        rule: str,
        index: int,
        start_us: float,
        end_us: float,
        severity: str,
        evidence: dict[str, Any],
    ) -> None:
        self.n_alerts += 1
        if self.registry is not None:
            self.registry.counter(f"monitor.alerts.{kind}").inc()
            self.registry.gauge("monitor.last_alert_window").set(index)
        if len(self.alerts) >= self.config.max_alerts:
            return
        self.alerts.append(
            Alert(
                seq=self.n_alerts,
                kind=kind,
                rule=rule,
                window=index,
                start_us=start_us,
                end_us=end_us,
                severity=severity,
                evidence=evidence,
                blame=self._blame(start_us, end_us),
            )
        )

    # --- blame drill-down -------------------------------------------------------

    def _blame(self, start_us: float, end_us: float) -> dict[str, Any] | None:
        """Attribution snapshot restricted to the offending window.

        Falls back to a trailing window range when no retained request
        completed inside the window itself (e.g. an alert on a series
        with no completions, or a sparsely sampled tracer); the basis
        actually used is recorded so the table is never misread.
        """
        if self.tracer is None:
            return None
        spans = [
            s
            for s in self.tracer.spans
            if s.end_us is not None and start_us <= s.end_us < end_us
        ]
        basis = "window"
        basis_start = start_us
        if not spans:
            lookback = self.config.blame_lookback_windows
            basis_start = max(
                self.recorder.origin_us,
                start_us - lookback * self.recorder.window_us,
            )
            spans = [
                s
                for s in self.tracer.spans
                if s.end_us is not None and basis_start <= s.end_us < end_us
            ]
            basis = "trailing"
        if not spans:
            return {
                "basis": "none",
                "start_us": basis_start,
                "end_us": end_us,
                "n_requests": 0,
            }
        overall = AttributionReport.from_spans(spans).overall.to_dict()
        return {
            "basis": basis,
            "start_us": basis_start,
            "end_us": end_us,
            "n_requests": overall["n_requests"],
            "total_us": overall["total_us"],
            "blame_us": overall["blame_us"],
            "blame_fraction": overall["blame_fraction"],
        }

    # --- export -----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Deterministic ``repro.monitor/1`` artifact body."""
        return {
            "schema": SCHEMA,
            "window_us": self.recorder.window_us,
            "origin_us": self.recorder.origin_us,
            "windows_closed": self.windows_closed,
            "config": self.config.to_dict(),
            "rules": [rule.to_dict() for rule in self.rules],
            "burn_rules": [burn.to_dict() for _, burn in self._burn],
            "n_alerts": self.n_alerts,
            "alerts": [alert.to_dict() for alert in self.alerts],
            "rule_state": {
                rule.name: rule.state() for rule in self.rules
            },
        }

    def write_jsonl(self, path: Any) -> None:
        """JSONL event stream: header, one line per alert, summary."""
        body = self.to_dict()
        lines = [
            json.dumps(
                {
                    "event": "header",
                    "schema": SCHEMA,
                    "window_us": body["window_us"],
                    "config": body["config"],
                    "rules": body["rules"],
                    "burn_rules": body["burn_rules"],
                }
            )
        ]
        lines.extend(
            json.dumps({"event": "alert", **alert}) for alert in body["alerts"]
        )
        lines.append(
            json.dumps(
                {
                    "event": "summary",
                    "windows_closed": body["windows_closed"],
                    "n_alerts": body["n_alerts"],
                    "fingerprint": monitor_fingerprint(body),
                }
            )
        )
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")


def monitor_fingerprint(artifact: dict[str, Any]) -> str:
    """Hash of the deterministic artifact body (PR 7 convention).

    Wall-clock never enters the monitor artifact (everything is keyed
    by virtual time), so only a previously stamped ``fingerprint`` is
    stripped before hashing; same seed/config ⇒ same fingerprint on
    any machine.
    """
    body = dict(artifact)
    body.pop("fingerprint", None)
    payload = json.dumps(body, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]
