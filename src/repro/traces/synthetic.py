"""Synthetic block-trace generation.

Each workload is characterized by a handful of published statistics —
read fraction, access skew, footprint, request sizes, sequential-run
tendency and arrival rate — and generated reproducibly from a seed.

Skew uses a bounded Zipf over the footprint: page popularity
``p(i) ~ 1 / rank(i)^s`` with a random rank permutation, so the hot set
is scattered across the address space like real file systems scatter
hot files.  Reads and writes can use different skews (search-engine
traces read a tiny hot set but log writes sequentially, for example).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.schema import TraceRecord


@dataclass(frozen=True)
class SyntheticWorkload:
    """Parameters of a synthetic trace.

    Parameters
    ----------
    name:
        Workload label.
    footprint_pages:
        Number of distinct logical pages the workload can touch.
    read_fraction:
        Fraction of requests that are reads.
    read_zipf_s, write_zipf_s:
        Zipf exponents for read and write target popularity
        (0 = uniform; ~1 = heavily skewed).
    mean_request_pages:
        Mean request size (geometric distribution, minimum 1 page).
    sequential_fraction:
        Probability that a request continues the previous one's address
        run instead of sampling a fresh target.
    mean_interarrival_us:
        Mean request inter-arrival time (exponential).
    """

    name: str
    footprint_pages: int
    read_fraction: float
    read_zipf_s: float = 0.9
    write_zipf_s: float = 0.6
    mean_request_pages: float = 2.0
    sequential_fraction: float = 0.1
    mean_interarrival_us: float = 500.0

    def __post_init__(self) -> None:
        if self.footprint_pages <= 0:
            raise ConfigurationError("footprint must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read fraction outside [0, 1]")
        if self.read_zipf_s < 0 or self.write_zipf_s < 0:
            raise ConfigurationError("Zipf exponents must be non-negative")
        if self.mean_request_pages < 1.0:
            raise ConfigurationError("mean request size below one page")
        if not 0.0 <= self.sequential_fraction < 1.0:
            raise ConfigurationError("sequential fraction outside [0, 1)")
        if self.mean_interarrival_us <= 0:
            raise ConfigurationError("inter-arrival time must be positive")

    # --- generation -----------------------------------------------------------------

    def generate(self, n_requests: int, seed: int = 0) -> list[TraceRecord]:
        """Generate a seeded trace of ``n_requests`` records."""
        if n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")
        rng = np.random.default_rng(seed)
        read_pop = _zipf_sampler(self.footprint_pages, self.read_zipf_s, rng)
        write_pop = _zipf_sampler(self.footprint_pages, self.write_zipf_s, rng)

        timestamps = np.cumsum(
            rng.exponential(self.mean_interarrival_us, size=n_requests)
        )
        is_write = rng.random(n_requests) >= self.read_fraction
        sizes = 1 + rng.geometric(
            min(1.0, 1.0 / self.mean_request_pages), size=n_requests
        ) - 1
        sizes = np.clip(sizes, 1, max(1, self.footprint_pages // 8))
        sequential = rng.random(n_requests) < self.sequential_fraction

        records: list[TraceRecord] = []
        previous_end = 0
        for i in range(n_requests):
            size = int(sizes[i])
            if sequential[i] and previous_end + size <= self.footprint_pages:
                lpn = previous_end
            else:
                sampler = write_pop if is_write[i] else read_pop
                lpn = int(sampler(rng))
                lpn = min(lpn, self.footprint_pages - size)
            records.append(
                TraceRecord(
                    timestamp_us=float(timestamps[i]),
                    lpn=lpn,
                    n_pages=size,
                    is_write=bool(is_write[i]),
                )
            )
            previous_end = lpn + size
        return records

    def expected_read_pages(self, n_requests: int) -> float:
        """Rough expected number of read pages in a generated trace."""
        return n_requests * self.read_fraction * self.mean_request_pages


def _zipf_sampler(n: int, s: float, rng: np.random.Generator):
    """A sampler over ``[0, n)`` with bounded-Zipf popularity.

    Ranks are randomly assigned to pages so the hot set is scattered.
    Returns a callable ``sampler(rng) -> page``.
    """
    if s == 0.0:
        return lambda rng_: rng_.integers(0, n)
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-s
    weights /= weights.sum()
    cdf = np.cumsum(weights)
    permutation = rng.permutation(n)

    def sample(rng_: np.random.Generator) -> int:
        rank = int(np.searchsorted(cdf, rng_.random(), side="right"))
        return int(permutation[min(rank, n - 1)])

    return sample
