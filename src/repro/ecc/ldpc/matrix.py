"""GF(2) linear algebra helpers for LDPC code construction.

Matrices are dense numpy uint8 arrays with values in {0, 1}; the sizes
involved (codewords of a few thousand bits) keep dense elimination
cheap while staying easy to verify.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def gf2_row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Row-reduce a GF(2) matrix to reduced row-echelon form.

    Returns the reduced matrix and the list of pivot column indices.
    """
    work = _as_binary(matrix).copy()
    rows, cols = work.shape
    pivot_cols: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        pivot = None
        for candidate in range(row, rows):
            if work[candidate, col]:
                pivot = candidate
                break
        if pivot is None:
            continue
        if pivot != row:
            work[[row, pivot]] = work[[pivot, row]]
        eliminate = work[:, col].astype(bool).copy()
        eliminate[row] = False
        work[eliminate] ^= work[row]
        pivot_cols.append(col)
        row += 1
    return work, pivot_cols


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a GF(2) matrix."""
    _, pivots = gf2_row_reduce(matrix)
    return len(pivots)


def gf2_systematic_form(
    parity_check: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bring a parity-check matrix into systematic form ``[P | I]``.

    Returns ``(h_systematic, column_permutation, generator)`` where
    ``column_permutation`` maps systematic column positions back to the
    original columns (``original = permuted[perm]`` semantics:
    ``h_systematic[:, j] == parity_check_reduced[:, perm[j]]``) and
    ``generator`` is the systematic generator ``[I | P^T]`` satisfying
    ``h_systematic @ generator.T = 0``.

    Redundant (linearly dependent) rows of ``parity_check`` are dropped.
    """
    reduced, pivots = gf2_row_reduce(parity_check)
    rank = len(pivots)
    if rank == 0:
        raise ConfigurationError("parity-check matrix has rank 0")
    reduced = reduced[:rank]
    n = reduced.shape[1]
    non_pivots = [c for c in range(n) if c not in set(pivots)]
    k = len(non_pivots)
    if k == 0:
        raise ConfigurationError("parity-check matrix leaves no message bits")
    # Permute columns: message (non-pivot) columns first, pivot columns last.
    perm = np.array(non_pivots + pivots, dtype=np.intp)
    h_sys = reduced[:, perm]
    # h_sys = [P | I]; generator G = [I_k | P^T].
    p = h_sys[:, :k]
    generator = np.concatenate([np.eye(k, dtype=np.uint8), p.T], axis=1)
    if np.any((h_sys @ generator.T) % 2):
        raise ConfigurationError("systematic form construction failed — internal bug")
    return h_sys, perm, generator


def _as_binary(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ConfigurationError("expected a 2-D matrix")
    if matrix.size and matrix.max() > 1:
        raise ConfigurationError("matrix entries must be 0/1")
    return matrix
