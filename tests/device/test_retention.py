"""Tests for the retention model (paper Eq. 3 + exponential tail)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.distributions import Distribution
from repro.device.retention import RetentionModel
from repro.errors import ConfigurationError


class TestMoments:
    def test_mean_shift_formula(self):
        model = RetentionModel()
        # Ks (x - x0) Kd N^0.4 ln(1 + t/t0)
        expected = 0.333 * (3.6 - 1.1) * 4e-4 * 3000**0.4 * math.log(25.0)
        assert model.mean_shift(3.6, 3000, 24.0) == pytest.approx(expected)

    def test_variance_formula(self):
        model = RetentionModel()
        expected = 0.333 * (3.6 - 1.1) * 2e-6 * 3000**0.5 * math.log(25.0)
        assert model.shift_variance(3.6, 3000, 24.0) == pytest.approx(expected)

    def test_no_drift_at_zero_time(self):
        model = RetentionModel()
        assert model.mean_shift(3.6, 3000, 0.0) == 0.0

    def test_no_drift_below_erased_level(self):
        model = RetentionModel()
        assert model.mean_shift(0.9, 3000, 24.0) == 0.0

    def test_drift_grows_with_level(self):
        model = RetentionModel()
        assert model.mean_shift(3.6, 3000, 24.0) > model.mean_shift(2.4, 3000, 24.0)

    def test_drift_grows_with_pe_and_time(self):
        model = RetentionModel()
        base = model.mean_shift(3.6, 2000, 24.0)
        assert model.mean_shift(3.6, 6000, 24.0) > base
        assert model.mean_shift(3.6, 2000, 720.0) > base

    def test_rejects_negative_args(self):
        model = RetentionModel()
        with pytest.raises(ConfigurationError):
            model.mean_shift(3.6, -1, 24.0)
        with pytest.raises(ConfigurationError):
            model.mean_shift(3.6, 1000, -1.0)

    def test_rejects_bad_constants(self):
        with pytest.raises(ConfigurationError):
            RetentionModel(ks=0.0)
        with pytest.raises(ConfigurationError):
            RetentionModel(tail_weight=1.5)
        with pytest.raises(ConfigurationError):
            RetentionModel(tail_scale=0.0)


class TestApply:
    def test_apply_shifts_mean_down(self):
        model = RetentionModel()
        initial = Distribution.gaussian(3.6, 0.05)
        aged = model.apply(initial, 4000, 168.0)
        expected_drop = model.mean_shift(3.6, 4000, 168.0)
        assert aged.mean() == pytest.approx(3.6 - expected_drop, abs=5e-3)

    def test_apply_widens_distribution(self):
        model = RetentionModel()
        initial = Distribution.gaussian(3.6, 0.05)
        aged = model.apply(initial, 4000, 168.0)
        assert aged.std() > initial.std()

    def test_apply_identity_at_zero_time(self):
        model = RetentionModel()
        initial = Distribution.gaussian(3.6, 0.05)
        assert model.apply(initial, 4000, 0.0) is initial

    def test_apply_preserves_mass(self):
        model = RetentionModel()
        initial = Distribution.uniform(3.5, 3.7)
        aged = model.apply(initial, 6000, 720.0)
        assert aged.pmf.sum() == pytest.approx(1.0)

    def test_level_dependence_within_one_distribution(self):
        """Higher-voltage mass drifts further (the NUNMA motivation)."""
        model = RetentionModel()
        low = model.apply(Distribution.delta(2.7), 5000, 720.0)
        high = model.apply(Distribution.delta(3.7), 5000, 720.0)
        assert (3.7 - high.mean()) > (2.7 - low.mean())


class TestTail:
    def test_tail_off_by_default(self):
        model = RetentionModel()
        assert model.effective_tail_weight(6000, 720.0) == 0.0
        assert model.tail_distribution(6000, 720.0, 0.002) is None

    def test_tail_weight_reference_point(self):
        model = RetentionModel(tail_weight=0.01)
        assert model.effective_tail_weight(6000, 720.0) == pytest.approx(0.01)

    def test_tail_weight_scales_down_with_pe_and_time(self):
        model = RetentionModel(tail_weight=0.01)
        assert model.effective_tail_weight(2000, 24.0) < 0.01
        assert model.effective_tail_weight(6000, 0.0) == 0.0

    def test_tail_distribution_is_downward(self):
        model = RetentionModel(tail_weight=0.05, tail_scale=0.05)
        tail = model.tail_distribution(6000, 720.0, 0.002)
        low, high = tail.support
        assert high <= 0.0
        assert tail.mean() < 0.0

    def test_tail_raises_far_tail_mass(self):
        plain = RetentionModel()
        tailed = RetentionModel(tail_weight=0.01, tail_scale=0.08)
        initial = Distribution.gaussian(3.6, 0.02)
        aged_plain = plain.apply(initial, 6000, 720.0)
        aged_tailed = tailed.apply(initial, 6000, 720.0)
        threshold = 3.3
        assert aged_tailed.mass_below(threshold) > aged_plain.mass_below(threshold)


@settings(max_examples=25, deadline=None)
@given(
    pe=st.floats(500, 8000),
    t=st.floats(1.0, 1440.0),
    x=st.floats(2.0, 4.0),
)
def test_property_moments_non_negative_and_monotone_in_time(pe, t, x):
    model = RetentionModel()
    assert model.mean_shift(x, pe, t) >= 0.0
    assert model.shift_variance(x, pe, t) >= 0.0
    assert model.mean_shift(x, pe, 2 * t) >= model.mean_shift(x, pe, t)
