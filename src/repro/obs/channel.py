"""Media-level read-channel & decoder telemetry.

The observability stack built so far watches *requests* (spans, windowed
series, profiling).  This module watches the layer FlexLevel is actually
about: the read channel.  :class:`ChannelTelemetry` records, per
physical block, the online statistics that adaptive-threshold and
MI-quantization systems (ROADMAP item 3) need as measured — not assumed
— inputs:

* decoder-observed raw-bit-error estimates next to the analytic
  ``repro.device.ber`` prediction (per block and per cell mode),
* retry-ladder sensing-level utilization histograms per
  (cell mode, provisioned levels) configuration,
* sampled LDPC iteration/convergence trajectories, with exact
  LLR-magnitude tables per sensing configuration derived at export from
  :class:`repro.ecc.ldpc.channel.NandReadChannel`,
* wear/retention context: P/E at read, data age, LevelAdjust cell mode,
  erase counts and block retirements.

Everything accumulates into bounded, preallocated per-block
accumulators (exposed as numpy views) so the per-read cost is a
handful of scalar updates.  The observed-error
estimator for the latency-model simulation paths draws
``Binomial(page_bits, raw_ber)`` from a *dedicated* seeded generator:
attaching telemetry therefore never perturbs simulation RNG streams
(disabled-mode byte-identity), same-seed runs reproduce the artifact
bit-for-bit, and the per-mode observed BER converges to the analytic
mean (the CI smoke assertion).  Bit-accurate ECC decodes (bit-flip,
min-sum, sum-product, BCH) report *real* corrected-bit counts through
:meth:`ChannelTelemetry.on_decode`.

The exported artifact is schema ``repro.channel/1``: deterministic,
wall-clock-free, fingerprinted with :func:`channel_fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

import numpy as np

from repro.errors import ConfigurationError

#: Artifact schema identifier.
CHANNEL_SCHEMA = "repro.channel/1"

#: Stable cell-mode encoding (matches the FTL's internal convention).
#: Kept as names, not a CellMode import: ``repro.core.level_adjust``
#: transitively imports :mod:`repro.obs`, so importing it here would
#: close an import cycle.
MODE_NAME_TO_INT = {"normal": 0, "reduced": 1, "slc": 2}
INT_TO_MODE_NAME = {code: name for name, code in MODE_NAME_TO_INT.items()}

#: Glyph ramp for the ASCII block heatmap, lightest to darkest.
HEATMAP_GLYPHS = " .:-=+*#%@"


def _mode_int(mode: Any) -> int:
    """Normalise a cell mode (CellMode enum, name or int) to its code."""
    name = getattr(mode, "name", None)
    if name is not None:
        mode = name
    if isinstance(mode, str):
        try:
            return MODE_NAME_TO_INT[mode.lower()]
        except KeyError:
            raise ConfigurationError(f"unknown cell mode name: {mode!r}")
    code = int(mode)
    if code not in INT_TO_MODE_NAME:
        raise ConfigurationError(f"unknown cell mode code: {code}")
    return code


class ChannelTelemetry:
    """Bounded per-block read-channel statistics accumulator.

    Parameters
    ----------
    n_blocks:
        Number of physical blocks to track; per-block arrays are
        preallocated at this size.  Reads reporting a block outside
        ``[0, n_blocks)`` (e.g. unmapped pages) still feed the
        aggregate statistics.
    page_bits:
        Bits per page, the binomial trial count for the observed-error
        estimator (default: a 16 KiB page).
    seed:
        Seed of the dedicated observed-error generator.  Independent of
        every simulation RNG stream by construction.
    trajectory_cap:
        Maximum number of sampled decode trajectories retained (the
        first ``trajectory_cap`` flash reads are kept — deterministic
        and bounded).
    """

    def __init__(
        self,
        n_blocks: int,
        *,
        page_bits: int = 16 * 1024 * 8,
        seed: int = 2015,
        trajectory_cap: int = 256,
    ):
        if n_blocks <= 0:
            raise ConfigurationError(f"non-positive n_blocks: {n_blocks}")
        if page_bits <= 0:
            raise ConfigurationError(f"non-positive page_bits: {page_bits}")
        if trajectory_cap < 0:
            raise ConfigurationError(f"negative trajectory_cap: {trajectory_cap}")
        self.n_blocks = n_blocks
        self.page_bits = page_bits
        self.seed = seed
        self.trajectory_cap = trajectory_cap
        self._rng = np.random.default_rng(seed)
        self._binomial = self._rng.binomial

        # Per-block accumulators: bounded, preallocated plain lists —
        # scalar ``list[i] += x`` is ~3x cheaper than a numpy indexed
        # update, and the per-read hot path does a dozen of them (the
        # bench_channel_telemetry overhead budget is won here).  The
        # numpy views below materialise on demand.
        self._reads = [0] * n_blocks
        self._bits_read = [0] * n_blocks
        self._observed_errors = [0] * n_blocks
        self._analytic_ber_sum = [0.0] * n_blocks
        self._retry_rounds = [0] * n_blocks
        self._uncorrectable = [0] * n_blocks
        self._pe_sum = [0.0] * n_blocks
        self._age_sum = [0.0] * n_blocks
        self._last_pe = [0.0] * n_blocks
        self._last_mode = [-1] * n_blocks
        self._erases = [0] * n_blocks
        self._retired = [0] * n_blocks

        # Aggregates keyed by small discrete domains.
        self._mode_cache: dict[Any, int] = {}
        self._mode_acc: dict[int, list[float]] = {}
        self._channel_acc: dict[int, list[float]] = {}
        self._sensing_configs: dict[tuple[int, int], list[float]] = {}
        self._required_levels: dict[int, int] = {}
        self._calibration: dict[int, list[float]] = {}
        self._tenant_channels: dict[str, dict[int, int]] = {}
        self._retire_reasons: dict[str, int] = {}
        self.decoder_stats: dict[str, dict[str, int]] = {}
        self.trajectories: list[dict[str, Any]] = []
        self.events = 0
        self.aggregate_only_reads = 0

    # --- per-block numpy views ------------------------------------------------------

    @property
    def reads(self) -> np.ndarray:
        return np.asarray(self._reads, dtype=np.int64)

    @property
    def bits_read(self) -> np.ndarray:
        return np.asarray(self._bits_read, dtype=np.int64)

    @property
    def observed_errors(self) -> np.ndarray:
        return np.asarray(self._observed_errors, dtype=np.int64)

    @property
    def analytic_ber_sum(self) -> np.ndarray:
        return np.asarray(self._analytic_ber_sum, dtype=np.float64)

    @property
    def retry_rounds(self) -> np.ndarray:
        return np.asarray(self._retry_rounds, dtype=np.int64)

    @property
    def uncorrectable(self) -> np.ndarray:
        return np.asarray(self._uncorrectable, dtype=np.int64)

    @property
    def pe_sum(self) -> np.ndarray:
        return np.asarray(self._pe_sum, dtype=np.float64)

    @property
    def age_sum(self) -> np.ndarray:
        return np.asarray(self._age_sum, dtype=np.float64)

    @property
    def last_pe(self) -> np.ndarray:
        return np.asarray(self._last_pe, dtype=np.float64)

    @property
    def last_mode(self) -> np.ndarray:
        return np.asarray(self._last_mode, dtype=np.int8)

    @property
    def erases(self) -> np.ndarray:
        return np.asarray(self._erases, dtype=np.int64)

    @property
    def retired(self) -> np.ndarray:
        return np.asarray(self._retired, dtype=np.int8)

    # --- ingestion ----------------------------------------------------------------

    def on_read(
        self,
        *,
        block: int,
        mode: Any,
        raw_ber: float,
        provisioned_levels: int,
        required_levels: int,
        pe_cycles: float = 0.0,
        age_hours: float = 0.0,
        channel: int = 0,
        rounds: int = 0,
        uncorrectable: bool = False,
        iterations: tuple[int, ...] = (),
        tenant: str | None = None,
    ) -> int:
        """Record one flash page read; returns the observed error count.

        The observed count is a binomial draw at the analytic raw BER
        from the telemetry's own generator — statistically faithful to
        the channel model while leaving simulation RNG streams
        untouched.
        """
        # Mode objects (CellMode members, names, ints) are a tiny
        # closed set: memoise the normalisation per object.
        mode_code = self._mode_cache.get(mode)
        if mode_code is None:
            mode_code = _mode_int(mode)
            self._mode_cache[mode] = mode_code
        p = min(max(float(raw_ber), 0.0), 1.0)
        page_bits = self.page_bits
        observed = int(self._binomial(page_bits, p))
        self.events += 1

        if 0 <= block < self.n_blocks:
            self._reads[block] += 1
            self._bits_read[block] += page_bits
            self._observed_errors[block] += observed
            self._analytic_ber_sum[block] += p
            self._retry_rounds[block] += rounds
            self._uncorrectable[block] += 1 if uncorrectable else 0
            self._pe_sum[block] += pe_cycles
            self._age_sum[block] += age_hours
            self._last_pe[block] = pe_cycles
            self._last_mode[block] = mode_code
        else:
            self.aggregate_only_reads += 1

        acc = self._mode_acc.setdefault(mode_code, [0, 0, 0, 0.0, 0, 0])
        acc[0] += 1
        acc[1] += page_bits
        acc[2] += observed
        acc[3] += p
        acc[4] += rounds
        acc[5] += 1 if uncorrectable else 0

        chan = self._channel_acc.setdefault(int(channel), [0, 0, 0, 0])
        chan[0] += 1
        chan[1] += observed
        chan[2] += rounds
        chan[3] += 1 if uncorrectable else 0

        cfg = self._sensing_configs.setdefault(
            (mode_code, int(provisioned_levels)), [0, 0.0]
        )
        cfg[0] += 1
        cfg[1] += p
        self._required_levels[int(required_levels)] = (
            self._required_levels.get(int(required_levels), 0) + 1
        )

        if tenant is not None:
            self.note_tenant_channel(tenant, channel)

        if len(self.trajectories) < self.trajectory_cap:
            self.trajectories.append(
                {
                    "block": int(block),
                    "mode": INT_TO_MODE_NAME[mode_code],
                    "provisioned_levels": int(provisioned_levels),
                    "rounds": int(rounds),
                    "iterations": [int(i) for i in iterations],
                    "converged": not uncorrectable,
                }
            )
        return observed

    def on_breakdown(
        self,
        breakdown: Any,
        *,
        channel: int = 0,
        rounds: int = 0,
        uncorrectable: bool = False,
        iterations: tuple[int, ...] = (),
        tenant: str | None = None,
    ) -> int:
        """Record a read from a ``ReadServiceBreakdown``-shaped object."""
        return self.on_read(
            block=breakdown.block,
            mode=breakdown.mode,
            raw_ber=breakdown.raw_ber,
            provisioned_levels=breakdown.provisioned_levels,
            required_levels=breakdown.required_levels,
            pe_cycles=breakdown.pe_cycles,
            age_hours=breakdown.age_hours,
            channel=channel,
            rounds=rounds,
            uncorrectable=uncorrectable,
            iterations=iterations,
            tenant=tenant,
        )

    def on_erase(self, block: int, pe_cycles: float | None = None) -> None:
        """Record a successful block erase."""
        if 0 <= block < self.n_blocks:
            self._erases[block] += 1
            if pe_cycles is not None:
                self._last_pe[block] = float(pe_cycles)

    def on_retire(self, block: int, reason: str = "unknown") -> None:
        """Record a block leaving service (grown bad block)."""
        if 0 <= block < self.n_blocks:
            self._retired[block] = 1
        self._retire_reasons[reason] = self._retire_reasons.get(reason, 0) + 1

    def on_decode(
        self,
        family: str,
        *,
        iterations: int,
        converged: bool,
        corrected_bits: int = 0,
        codeword_bits: int = 0,
    ) -> None:
        """Record a bit-accurate ECC decode outcome.

        ``corrected_bits`` is the *real* hamming distance between the
        hard channel decisions and the decoded codeword — the ground
        truth the binomial estimator approximates on the latency paths.
        """
        stats = self.decoder_stats.setdefault(
            family,
            {
                "decodes": 0,
                "converged": 0,
                "failures": 0,
                "iterations": 0,
                "corrected_bits": 0,
                "codeword_bits": 0,
            },
        )
        stats["decodes"] += 1
        stats["iterations"] += int(iterations)
        if converged:
            stats["converged"] += 1
        else:
            stats["failures"] += 1
        stats["corrected_bits"] += int(corrected_bits)
        stats["codeword_bits"] += int(codeword_bits)

    def note_required_levels(self, raw_ber: float, levels: int) -> None:
        """Record a sensing-level calibration probe outcome."""
        acc = self._calibration.setdefault(int(levels), [0, 0.0])
        acc[0] += 1
        acc[1] += float(raw_ber)

    def note_tenant_channel(self, tenant: str, channel: int) -> None:
        """Record one op of ``tenant`` landing on ``channel``."""
        mix = self._tenant_channels.setdefault(str(tenant), {})
        mix[int(channel)] = mix.get(int(channel), 0) + 1

    # --- derived views --------------------------------------------------------------

    def block_stats(self) -> dict[str, np.ndarray]:
        """Per-block measured statistics (the ROADMAP item 3 API).

        Returns copies; mutating them never corrupts the accumulator.
        ``observed_ber`` / ``analytic_ber`` are 0 for unread blocks.
        """
        reads = self.reads.astype(np.float64)
        safe_reads = np.where(reads > 0, reads, 1.0)
        safe_bits = np.where(self.bits_read > 0, self.bits_read, 1).astype(np.float64)
        return {
            "reads": self.reads.copy(),
            "observed_errors": self.observed_errors.copy(),
            "observed_ber": self.observed_errors / safe_bits,
            "analytic_ber": self.analytic_ber_sum / safe_reads,
            "retry_rounds": self.retry_rounds.copy(),
            "uncorrectable": self.uncorrectable.copy(),
            "mean_pe": self.pe_sum / safe_reads,
            "mean_age_hours": self.age_sum / safe_reads,
            "last_pe": self.last_pe.copy(),
            "last_mode": self.last_mode.copy(),
            "erases": self.erases.copy(),
            "retired": self.retired.copy(),
        }

    def observed_vs_analytic(self) -> dict[str, dict[str, float]]:
        """Per-cell-mode observed vs analytic BER comparison."""
        out: dict[str, dict[str, float]] = {}
        for code in sorted(self._mode_acc):
            reads, bits, errors, ber_sum, rounds, uncorr = self._mode_acc[code]
            observed = errors / bits if bits else 0.0
            analytic = ber_sum / reads if reads else 0.0
            rel = abs(observed - analytic) / analytic if analytic > 0 else 0.0
            out[INT_TO_MODE_NAME[code]] = {
                "reads": int(reads),
                "bits": int(bits),
                "observed_errors": int(errors),
                "observed_ber": observed,
                "analytic_ber": analytic,
                "relative_error": rel,
                "retry_rounds": int(rounds),
                "uncorrectable": int(uncorr),
            }
        return out

    def channel_mix(self) -> dict[str, dict[str, int]]:
        """Per-flash-channel read/error/retry totals."""
        return {
            str(channel): {
                "reads": int(acc[0]),
                "observed_errors": int(acc[1]),
                "retry_rounds": int(acc[2]),
                "uncorrectable": int(acc[3]),
            }
            for channel, acc in sorted(self._channel_acc.items())
        }

    def sensing_config_stats(self) -> list[dict[str, Any]]:
        """Sensing-ladder utilization with exact per-config LLR tables.

        Each entry describes one (cell mode, provisioned levels)
        configuration actually exercised, its mean analytic raw BER and
        the exact region-LLR magnitudes a
        :class:`~repro.ecc.ldpc.channel.NandReadChannel` at that mean
        BER would produce.  Computed at export — zero per-read cost.
        """
        from repro.ecc.ldpc.channel import NandReadChannel

        entries = []
        for (mode_code, levels), (count, ber_sum) in sorted(
            self._sensing_configs.items()
        ):
            mean_ber = ber_sum / count if count else 0.0
            entry: dict[str, Any] = {
                "mode": INT_TO_MODE_NAME[mode_code],
                "provisioned_levels": int(levels),
                "reads": int(count),
                "mean_raw_ber": mean_ber,
            }
            clipped = min(max(mean_ber, 1e-12), 0.499999)
            nand = NandReadChannel(clipped, extra_levels=int(levels))
            entry["llr_magnitudes"] = [
                round(abs(float(llr)), 6) for llr in nand.region_llrs
            ]
            entries.append(entry)
        return entries

    # --- export ---------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Deterministic, wall-free ``repro.channel/1`` artifact payload."""
        stats = self.block_stats()
        active = np.flatnonzero(
            (self.reads > 0) | (self.erases > 0) | (self.retired > 0)
        )
        blocks = []
        for b in active.tolist():
            blocks.append(
                {
                    "block": int(b),
                    "reads": int(stats["reads"][b]),
                    "observed_errors": int(stats["observed_errors"][b]),
                    "observed_ber": round(float(stats["observed_ber"][b]), 12),
                    "analytic_ber": round(float(stats["analytic_ber"][b]), 12),
                    "retry_rounds": int(stats["retry_rounds"][b]),
                    "uncorrectable": int(stats["uncorrectable"][b]),
                    "mean_pe": round(float(stats["mean_pe"][b]), 6),
                    "mean_age_hours": round(float(stats["mean_age_hours"][b]), 6),
                    "last_mode": INT_TO_MODE_NAME.get(
                        int(stats["last_mode"][b]), "unread"
                    ),
                    "erases": int(stats["erases"][b]),
                    "retired": bool(stats["retired"][b]),
                }
            )
        payload: dict[str, Any] = {
            "schema": CHANNEL_SCHEMA,
            "config": {
                "n_blocks": self.n_blocks,
                "page_bits": self.page_bits,
                "seed": self.seed,
                "trajectory_cap": self.trajectory_cap,
            },
            "totals": {
                "events": self.events,
                "reads": int(self.reads.sum()) + self.aggregate_only_reads,
                "aggregate_only_reads": self.aggregate_only_reads,
                "observed_errors": int(
                    sum(acc[2] for acc in self._mode_acc.values())
                ),
                "retry_rounds": int(sum(acc[4] for acc in self._mode_acc.values())),
                "sensing_escalations": int(
                    sum(acc[4] for acc in self._mode_acc.values())
                ),
                "uncorrectable": int(sum(acc[5] for acc in self._mode_acc.values())),
                "erases": int(self.erases.sum()),
                "retired_blocks": int(self.retired.sum()),
            },
            "blocks": blocks,
            "modes": self.observed_vs_analytic(),
            "channels": self.channel_mix(),
            "sensing_configs": self.sensing_config_stats(),
            "required_levels_histogram": {
                str(levels): count
                for levels, count in sorted(self._required_levels.items())
            },
            "calibration": {
                str(levels): {
                    "probes": int(acc[0]),
                    "mean_raw_ber": round(acc[1] / acc[0], 12) if acc[0] else 0.0,
                }
                for levels, acc in sorted(self._calibration.items())
            },
            "trajectories": list(self.trajectories),
            "decoders": {
                family: dict(stats)
                for family, stats in sorted(self.decoder_stats.items())
            },
            "tenants": {
                tenant: {str(ch): n for ch, n in sorted(mix.items())}
                for tenant, mix in sorted(self._tenant_channels.items())
            },
            "retire_reasons": dict(sorted(self._retire_reasons.items())),
        }
        payload["fingerprint"] = channel_fingerprint(payload)
        return payload


def channel_fingerprint(payload: Mapping[str, Any]) -> str:
    """Stable 16-hex-digit fingerprint of a channel artifact payload.

    Any ``fingerprint`` key already present is excluded, so the value
    is stable whether computed before or after embedding.
    """
    body = {key: value for key, value in payload.items() if key != "fingerprint"}
    text = json.dumps(body, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def render_block_heatmap(
    values: np.ndarray,
    *,
    width: int = 32,
    glyphs: str = HEATMAP_GLYPHS,
) -> list[str]:
    """Render per-block values as ASCII heatmap rows.

    Values are scaled linearly onto the glyph ramp; all-zero input
    renders as the lightest glyph.  Rows are ``width`` blocks wide, in
    block order, so physical locality (and the block→channel striping)
    is visible by eye.
    """
    if width <= 0:
        raise ConfigurationError(f"non-positive heatmap width: {width}")
    if len(glyphs) < 2:
        raise ConfigurationError("heatmap needs at least two glyphs")
    values = np.asarray(values, dtype=np.float64)
    peak = float(values.max()) if values.size else 0.0
    scaled = values / peak if peak > 0 else np.zeros_like(values)
    indices = np.minimum(
        (scaled * (len(glyphs) - 1)).round().astype(int), len(glyphs) - 1
    )
    rows = []
    for start in range(0, values.size, width):
        row = indices[start : start + width]
        rows.append("".join(glyphs[i] for i in row.tolist()))
    return rows


def diff_channel_artifacts(
    left: Mapping[str, Any], right: Mapping[str, Any]
) -> dict[str, Any]:
    """Structured diff of two channel artifacts (the ``--vs`` view).

    Compares sensing-level utilization shares and per-mode BER — the
    paper's Fig. 6 mechanism (FlexLevel shifting reads to cheaper
    sensing configurations) made visible.
    """
    for side, payload in (("left", left), ("right", right)):
        if payload.get("schema") != CHANNEL_SCHEMA:
            raise ConfigurationError(
                f"{side} artifact is not {CHANNEL_SCHEMA}: "
                f"{payload.get('schema')!r}"
            )

    def level_shares(payload: Mapping[str, Any]) -> dict[int, float]:
        configs = payload.get("sensing_configs", [])
        total = sum(entry["reads"] for entry in configs) or 1
        shares: dict[int, float] = {}
        for entry in configs:
            levels = int(entry["provisioned_levels"])
            shares[levels] = shares.get(levels, 0.0) + entry["reads"] / total
        return shares

    left_shares, right_shares = level_shares(left), level_shares(right)
    levels_diff = {
        str(levels): {
            "left_share": round(left_shares.get(levels, 0.0), 6),
            "right_share": round(right_shares.get(levels, 0.0), 6),
            "delta": round(
                right_shares.get(levels, 0.0) - left_shares.get(levels, 0.0), 6
            ),
        }
        for levels in sorted(set(left_shares) | set(right_shares))
    }
    modes_diff = {}
    for mode in sorted(set(left.get("modes", {})) | set(right.get("modes", {}))):
        lm = left.get("modes", {}).get(mode, {})
        rm = right.get("modes", {}).get(mode, {})
        modes_diff[mode] = {
            "left_observed_ber": lm.get("observed_ber", 0.0),
            "right_observed_ber": rm.get("observed_ber", 0.0),
            "left_reads": lm.get("reads", 0),
            "right_reads": rm.get("reads", 0),
        }
    left_totals = left.get("totals", {})
    right_totals = right.get("totals", {})
    return {
        "schema": "repro.channel-diff/1",
        "fingerprints": {
            "left": left.get("fingerprint", ""),
            "right": right.get("fingerprint", ""),
        },
        "sensing_level_shares": levels_diff,
        "modes": modes_diff,
        "totals": {
            key: {
                "left": left_totals.get(key, 0),
                "right": right_totals.get(key, 0),
                "delta": right_totals.get(key, 0) - left_totals.get(key, 0),
            }
            for key in (
                "reads",
                "observed_errors",
                "sensing_escalations",
                "uncorrectable",
            )
        },
    }
