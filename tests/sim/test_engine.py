"""Tests for the trace-driven simulation engine."""

import pytest

from repro.baselines.systems import SystemConfig, build_system
from repro.ftl.config import SsdConfig
from repro.sim.engine import SimulationEngine
from repro.traces.schema import TraceRecord
from repro.errors import ConfigurationError


def tiny_system(name="ldpc-in-ssd", shared_policy=None, **overrides):
    ssd = SsdConfig(
        n_blocks=64, pages_per_block=16, gc_free_block_threshold=2, **overrides
    )
    config = SystemConfig(
        ssd=ssd, footprint_pages=int(ssd.logical_pages * 0.4), buffer_pages=16
    )
    return build_system(name, config, level_adjust=shared_policy)


class TestEngine:
    def test_runs_and_counts(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        trace = [TraceRecord(i * 1000.0, i % 50, 1, i % 3 == 0) for i in range(100)]
        result = SimulationEngine(system, warmup_fraction=0.0).run(trace, "t")
        assert result.n_requests == 100
        assert result.mean_response_us() > 0

    def test_warmup_excluded_from_recording(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        trace = [TraceRecord(i * 1000.0, i % 50, 1, False) for i in range(100)]
        result = SimulationEngine(system, warmup_fraction=0.5).run(trace, "t")
        assert result.n_requests == 50

    def test_queueing_under_burst(self, shared_policy):
        """Requests arriving simultaneously must queue: later responses
        include the earlier requests' service times."""
        system = tiny_system(shared_policy=shared_policy)
        trace = [TraceRecord(0.0, lpn, 1, False) for lpn in range(10)]
        result = SimulationEngine(system, warmup_fraction=0.0).run(trace, "t")
        responses = result.read_responses_us
        assert responses[-1] > responses[0]

    def test_sparse_arrivals_no_queueing(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        trace = [TraceRecord(i * 1e6, i, 1, False) for i in range(10)]
        result = SimulationEngine(system, warmup_fraction=0.0).run(trace, "t")
        responses = result.read_responses_us
        assert max(responses) - min(responses) < 1000.0

    def test_channels_divide_multi_page_service(self, shared_policy):
        def run(channels):
            system = tiny_system(shared_policy=shared_policy)
            trace = [TraceRecord(i * 1e6, 0, 4, False) for i in range(5)]
            engine = SimulationEngine(system, warmup_fraction=0.0, n_channels=channels)
            return engine.run(trace, "t").mean_response_us()

        assert run(4) < run(1)

    def test_background_work_delays_later_requests(self, shared_policy):
        """A write burst's flash work lands on the next reads' latency."""
        system = tiny_system(shared_policy=shared_policy)
        trace = [TraceRecord(0.0, lpn, 1, True) for lpn in range(64)]
        trace += [TraceRecord(1.0 + i, 100 + i, 1, False) for i in range(5)]
        result = SimulationEngine(system, warmup_fraction=0.0).run(trace, "t")
        # the reads arrive immediately after the burst and must wait
        assert min(result.read_responses_us) > 100.0

    def test_empty_trace_rejected(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        with pytest.raises(ConfigurationError):
            SimulationEngine(system).run([], "t")

    def test_bad_params_rejected(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        with pytest.raises(ConfigurationError):
            SimulationEngine(system, warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            SimulationEngine(system, n_channels=0)

    def test_warmup_swallowing_all_requests_rejected(self, shared_policy):
        """A warmup fraction that rounds to the whole trace must fail
        loudly, not return an empty result with NaN aggregates."""
        system = tiny_system(shared_policy=shared_policy)
        engine = SimulationEngine(system, warmup_fraction=0.0)
        engine.warmup_fraction = 1.0  # float edge: rounds to everything
        trace = [TraceRecord(i * 1000.0, i, 1, False) for i in range(10)]
        with pytest.raises(ConfigurationError, match="warmup"):
            engine.run(trace, "t")

    def test_stats_snapshot_attached(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        trace = [TraceRecord(i * 1000.0, i % 20, 1, True) for i in range(200)]
        result = SimulationEngine(system, warmup_fraction=0.0).run(trace, "t")
        # host_write_pages counts flash-level writes: buffered rewrites
        # of the 20 distinct pages are absorbed, so it stays below 200.
        assert 0 < result.stats["host_write_pages"] <= 200
        assert result.stats["buffer_hits"] >= 0
        assert "residual_backlog_us" in result.stats

    def test_single_server_utilization_gauges(self, shared_policy):
        from repro.obs import MetricsRegistry

        system = tiny_system(shared_policy=shared_policy)
        registry = MetricsRegistry()
        trace = [TraceRecord(i * 500.0, i % 50, 2, i % 3 == 0) for i in range(200)]
        SimulationEngine(
            system, warmup_fraction=0.0, registry=registry
        ).run(trace, "t")
        snapshot = registry.snapshot()
        busy = snapshot["sim.channel.0.busy_us"]
        makespan = snapshot["sim.makespan_us"]
        utilization = snapshot["sim.channel.0.utilization"]
        assert busy > 0.0
        assert makespan > 0.0
        assert utilization == pytest.approx(busy / makespan, rel=1e-12)
        assert 0.0 <= utilization <= 1.0 + 1e-9
