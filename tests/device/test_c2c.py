"""Tests for the cell-to-cell interference model (paper Eq. 2)."""

import pytest

from repro.device.c2c import (
    C2cModel,
    CouplingRatios,
    EVEN_CELL_PROFILE,
    NeighborProfile,
    ODD_CELL_PROFILE,
)
from repro.device.voltages import normal_mlc_plan
from repro.errors import ConfigurationError


class TestCouplingRatios:
    def test_paper_defaults(self):
        ratios = CouplingRatios()
        assert ratios.gamma_x == 0.07
        assert ratios.gamma_y == 0.09
        assert ratios.gamma_xy == 0.005

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CouplingRatios(gamma_x=-0.1)


class TestAggressorSwing:
    def test_swing_is_non_negative(self):
        model = C2cModel()
        swing = model.aggressor_swing(normal_mlc_plan())
        low, _ = swing.support
        assert low >= 0.0

    def test_swing_mean_reflects_level_mix(self):
        model = C2cModel()
        plan = normal_mlc_plan()
        swing = model.aggressor_swing(plan)
        expected = sum(
            plan.program_shift_mean(lv) for lv in range(plan.n_levels)
        ) / plan.n_levels
        # Truncation at zero pulls the mean slightly up from the raw average.
        assert swing.mean() == pytest.approx(expected, rel=0.15)

    def test_swing_has_point_mass_at_zero(self):
        """Aggressors staying erased (level 0) contribute zero swing."""
        model = C2cModel()
        swing = model.aggressor_swing(normal_mlc_plan())
        # P(target level 0) = 1/4 under uniform usage.
        assert swing.mass_between(-1e-9, 1e-3) == pytest.approx(0.25, abs=0.02)

    def test_level_usage_mismatch_rejected(self):
        model = C2cModel(level_usage=(0.5, 0.5))
        with pytest.raises(ConfigurationError):
            model.aggressor_swing(normal_mlc_plan())


class TestShiftDistribution:
    def test_even_cell_suffers_more_than_odd(self):
        model = C2cModel()
        plan = normal_mlc_plan()
        even = model.mean_shift(plan, EVEN_CELL_PROFILE)
        odd = model.mean_shift(plan, ODD_CELL_PROFILE)
        assert even > odd > 0.0

    def test_no_neighbors_no_shift(self):
        model = C2cModel()
        shift = model.shift_distribution(
            normal_mlc_plan(), NeighborProfile(0, 0, 0)
        )
        assert shift.mean() == pytest.approx(0.0)
        assert shift.std() == pytest.approx(0.0)

    def test_shift_scales_with_neighbor_count(self):
        model = C2cModel()
        plan = normal_mlc_plan()
        one = model.mean_shift(plan, NeighborProfile(1, 0, 0))
        two = model.mean_shift(plan, NeighborProfile(2, 0, 0))
        assert two == pytest.approx(2 * one, rel=0.02)

    def test_shift_proportional_to_gamma(self):
        plan = normal_mlc_plan()
        small = C2cModel(CouplingRatios(gamma_x=0.035, gamma_y=0.0, gamma_xy=0.0))
        large = C2cModel(CouplingRatios(gamma_x=0.07, gamma_y=0.0, gamma_xy=0.0))
        profile = NeighborProfile(1, 0, 0)
        assert large.mean_shift(plan, profile) == pytest.approx(
            2 * small.mean_shift(plan, profile), rel=0.05
        )

    def test_cache_returns_same_object(self):
        model = C2cModel()
        plan = normal_mlc_plan()
        a = model.shift_distribution(plan, EVEN_CELL_PROFILE)
        b = model.shift_distribution(plan, EVEN_CELL_PROFILE)
        assert a is b

    def test_negative_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            NeighborProfile(-1, 0, 0)
