"""Calibrated device-model constants.

The paper states the retention-model constants of Eq. 3 (Ks, Kd, Km,
t0) but not (a) the baseline MLC voltage plan they pair with, (b) the
cycling-induced distribution broadening its Table 4 baseline numbers
imply, or (c) the heavy (exponential) retention tail its NUNMA margin
sensitivity implies (a 90 mV margin increase only buys ~4.5x lower
BER — far flatter than any Gaussian tail).

``scripts/fit_margin.py`` fits those free parameters against all 80
Table 4 points (baseline + NUNMA 1/2/3, P/E 2000-6000, 1 day-1 month):
the result reproduces every point within 0.43-2.5x, per-scheme
geometric-mean ratios 0.94 (baseline), 0.75 / 1.41 / 0.84 (NUNMA
1/2/3).

The paper's published constants remain the defaults of
:class:`~repro.device.retention.RetentionModel`; the calibrated values
live here so experiments opt in explicitly.  The fitted wear constants
and baseline margin double as package defaults because the paper gives
no values at all for them.
"""

from __future__ import annotations

from repro.device.ber import BerAnalyzer
from repro.device.c2c import C2cModel
from repro.device.coding import CellCoding
from repro.device.retention import RetentionModel
from repro.device.voltages import VoltagePlan
from repro.device.wear import WearModel

#: Fitted retention drift-mean constant (paper value 4e-4 scaled by 0.429).
CALIBRATED_KD = 4.0e-4 * 0.4293

#: Fitted retention drift-variance constant (paper value 2e-6 scaled by 0.377).
CALIBRATED_KM = 2.0e-6 * 0.3774

#: Fitted exponential-tail parameters (weight at the 6000 P/E / 1 month
#: reference point, and the tail's voltage scale).
CALIBRATED_TAIL_WEIGHT = 0.004019
CALIBRATED_TAIL_SCALE = 0.1569

#: Fitted programming-noise width in volts.
CALIBRATED_SIGMA_P = 0.03068

#: Fitted wear-broadening constants (also the WearModel defaults).
CALIBRATED_K_W = 0.01131
CALIBRATED_A_W = 0.2856

#: Fitted baseline guard band (also normal_mlc_plan's default margin).
CALIBRATED_BASE_MARGIN = 0.0411


def calibrated_retention() -> RetentionModel:
    """Retention model with the Table-4-fitted constants."""
    return RetentionModel(
        kd=CALIBRATED_KD,
        km=CALIBRATED_KM,
        tail_weight=CALIBRATED_TAIL_WEIGHT,
        tail_scale=CALIBRATED_TAIL_SCALE,
    )


def calibrated_wear() -> WearModel:
    """Wear-broadening model with the Table-4-fitted constants."""
    return WearModel(k_w=CALIBRATED_K_W, a_w=CALIBRATED_A_W)


def calibrated_analyzer(
    plan: VoltagePlan, coding: CellCoding | None = None
) -> BerAnalyzer:
    """A :class:`BerAnalyzer` wired with every calibrated constant.

    This is the analyzer all paper-reproduction experiments use.  The
    plan's programming noise is overridden with the fitted width so the
    caller can pass stock plans from :mod:`repro.device.voltages`.
    """
    calibrated_plan = VoltagePlan(
        name=plan.name,
        verify_voltages=plan.verify_voltages,
        read_references=plan.read_references,
        vpp=plan.vpp,
        sigma_p=CALIBRATED_SIGMA_P,
        erased_mean=plan.erased_mean,
        erased_sigma=plan.erased_sigma,
        grid_step=plan.grid_step,
    )
    usage = coding.level_usage() if coding is not None else None
    return BerAnalyzer(
        calibrated_plan,
        coding=coding,
        c2c=C2cModel(level_usage=usage),
        retention=calibrated_retention(),
        wear=calibrated_wear(),
    )
