"""``repro bench`` — the benchmark ledger's command-line surface.

Four subcommands over :mod:`repro.obs.bench` and
:mod:`repro.obs.bench_harness`:

* ``list`` — the discovered bench scripts and their one-line titles.
* ``run`` — execute every (or a filtered set of) bench script through
  the harness with quick/full mode and seed control, emitting
  ``BENCH_*.json`` files plus ledger records.
* ``compare`` — classify every metric of two runs (ledger selectors,
  BENCH/baseline files or directories) as improved/flat/regressed;
  exit 1 on regressions, which is the CI perf gate.
* ``report`` — a markdown trend table across the ledger's runs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.obs.bench import (
    BenchLedger,
    BenchModeMismatch,
    BenchResult,
    compare_results,
    default_bench_root,
)
from repro.obs.bench_harness import discover_benches, run_benches


def _ledger_path(root: Path) -> Path:
    return root / "benchmarks" / "results" / "ledger.jsonl"


def baseline_path(root: Path, mode: str) -> Path:
    """The committed baseline file gate comparisons default to."""
    return root / "benchmarks" / "baselines" / f"bench_baseline_{mode}.json"


def write_baseline(
    path: Path, results: dict[str, BenchResult], mode: str
) -> Path:
    """Write a ``{bench: record}`` baseline snapshot file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": 1,
        "mode": mode,
        "benches": {
            name: result.to_dict() for name, result in sorted(results.items())
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_baseline(path: Path | str) -> dict[str, BenchResult]:
    with open(path) as handle:
        payload = json.load(handle)
    return {
        name: BenchResult.from_dict(record)
        for name, record in payload.get("benches", {}).items()
    }


def _resolve_ref(
    ref: str, root: Path, mode: str | None
) -> dict[str, BenchResult]:
    """A comparison side: ledger selector, baseline/BENCH file or dir."""
    if ref == "baseline":
        path = baseline_path(root, mode or "quick")
        if not path.exists():
            raise LookupError(
                f"no committed baseline at {path}; run "
                "scripts/refresh_bench_baseline.py to create one"
            )
        return read_baseline(path)
    if ref in ("latest", "prev") or ref.startswith(("run:", "sha:")):
        return BenchLedger(_ledger_path(root)).select(ref, mode=mode)
    path = Path(ref)
    if path.is_dir():
        return {
            result.name: result
            for result in map(BenchResult.read, sorted(path.glob("BENCH_*.json")))
        }
    if path.is_file():
        with open(path) as handle:
            payload = json.load(handle)
        if isinstance(payload, dict) and "benches" in payload:
            return read_baseline(path)
        result = BenchResult.from_dict(payload)
        return {result.name: result}
    raise LookupError(f"cannot resolve comparison side {ref!r}")


def _seed_replicates(
    ledger: BenchLedger, baseline: BenchResult, candidate: BenchResult
) -> list[dict[str, float]]:
    """Ledger metric snapshots usable as noise replicates.

    Same bench, mode and config hash as the baseline, but from other
    seeds and not from the candidate's own run — the band must reflect
    pre-existing noise, not the change under test.
    """
    out: list[dict[str, float]] = []
    for record in ledger.records():
        if (
            record.get("bench") == baseline.name
            and record.get("mode") == baseline.mode
            and record.get("config_hash") == baseline.config_hash
            and record.get("run_id") != candidate.run_id
            and record.get("seed") != candidate.seed
        ):
            out.append({k: float(v) for k, v in record["metrics"].items()})
    return out


def cmd_list(args: Any) -> int:
    root = default_bench_root()
    scripts = discover_benches(root / "benchmarks")
    if not scripts:
        print(f"no bench scripts under {root / 'benchmarks'}")
        return 1
    width = max(len(s.name) for s in scripts)
    for script in scripts:
        print(f"{script.name:{width}s}  {script.title}")
    print(f"\n{len(scripts)} benches; run them with: repro bench run [--quick]")
    return 0


def cmd_run(args: Any) -> int:
    root = default_bench_root()
    scripts = discover_benches(root / "benchmarks")
    if args.filter:
        scripts = [
            s for s in scripts if any(token in s.name for token in args.filter)
        ]
    if not scripts:
        print("no benches match the filter")
        return 1
    outcomes = run_benches(
        scripts, quick=args.quick, alloc=args.alloc, seed=args.seed, root=root
    )
    emitted = sum(len(o.emitted) for o in outcomes)
    failed = [o for o in outcomes if not o.ok]
    total = sum(o.duration_s for o in outcomes)
    print(
        f"\n{len(outcomes) - len(failed)}/{len(outcomes)} benches ok, "
        f"{emitted} BENCH records, ledger at "
        f"{_ledger_path(root).relative_to(root)}, {total:.1f}s total"
    )
    if failed:
        print("failed: " + ", ".join(o.script.name for o in failed))
        return 1
    return 0


def cmd_compare(args: Any) -> int:
    root = default_bench_root()
    mode = args.mode
    try:
        baselines = _resolve_ref(args.baseline, root, mode)
        candidates = _resolve_ref(args.candidate, root, mode)
    except LookupError as exc:
        print(f"error: {exc}")
        return 2
    if not baselines:
        print(f"error: baseline {args.baseline!r} resolved to no benches")
        return 2
    ledger = BenchLedger(_ledger_path(root))
    comparisons = []
    missing_benches = sorted(set(baselines) - set(candidates))
    new_benches = sorted(set(candidates) - set(baselines))
    failures = list(missing_benches)
    for name in sorted(set(baselines) & set(candidates)):
        base, cand = baselines[name], candidates[name]
        try:
            comparison = compare_results(
                base,
                cand,
                replicates=_seed_replicates(ledger, base, cand),
                default_tolerance=args.tolerance,
            )
        except BenchModeMismatch as exc:
            print(f"error: {exc}")
            return 2
        comparisons.append(comparison)
        if not comparison.ok:
            failures.append(name)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": not failures,
                    "missing_benches": missing_benches,
                    "new_benches": new_benches,
                    "comparisons": [c.to_dict() for c in comparisons],
                },
                indent=2,
            )
        )
    else:
        for comparison in comparisons:
            lines = comparison.summary_lines(verbose=args.verbose)
            status = "ok" if comparison.ok else "REGRESSED"
            n_flat = sum(
                d.classification == "flat" for d in comparison.deltas
            )
            print(
                f"{comparison.bench} [{comparison.mode}]: {status} "
                f"({len(comparison.improvements)} improved, {n_flat} flat, "
                f"{len(comparison.regressions)} regressed)"
            )
            for line in lines:
                print(line)
        for name in missing_benches:
            print(f"{name}: MISSING from candidate run")
        for name in new_benches:
            print(f"{name}: new bench (no baseline, not gated)")
        verdict = "zero regressions" if not failures else (
            f"regressions in: {', '.join(sorted(set(failures)))}"
        )
        print(f"\ncompared {len(comparisons)} benches: {verdict}")
    return 1 if failures else 0


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def cmd_report(args: Any) -> int:
    root = default_bench_root()
    ledger = BenchLedger(_ledger_path(root))
    runs = ledger.runs(mode=args.mode)
    if not runs:
        print(f"ledger {_ledger_path(root)} has no runs to report")
        return 1
    runs = runs[-args.last:]
    # Column per run, row per bench.metric; within a run the last
    # record per bench wins (re-runs supersede).
    columns: list[tuple[str, dict[str, dict[str, float]]]] = []
    # Wall throughput per bench, from the newest run carrying it — a
    # trailing context column, never a gated trend cell (wall numbers
    # are machine noise across heterogeneous runners).
    wall_by_bench: dict[str, float] = {}
    for run_id, records in runs:
        by_bench: dict[str, dict[str, float]] = {}
        for record in records:
            by_bench[record["bench"]] = {
                k: float(v) for k, v in record["metrics"].items()
            }
            events_per_s = (record.get("wall") or {}).get("wall_events_per_s")
            if events_per_s is not None:
                wall_by_bench[record["bench"]] = float(events_per_s)
        columns.append((run_id, by_bench))
    row_keys = sorted(
        {
            (bench, metric)
            for _, by_bench in columns
            for bench, metrics in by_bench.items()
            for metric in metrics
        }
    )
    header = ["metric"] + [run_id for run_id, _ in columns]
    header.append("wall ev/s (latest)")
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for bench, metric in row_keys:
        cells = [f"{bench}.{metric}"]
        previous: float | None = None
        for _, by_bench in columns:
            value = by_bench.get(bench, {}).get(metric)
            if value is None:
                cells.append("—")
            elif previous in (None, 0.0) or not math.isfinite(previous):
                cells.append(_fmt(value))
            else:
                delta = (value - previous) / abs(previous)
                cells.append(f"{_fmt(value)} ({delta:+.1%})")
            previous = value if value is not None else previous
        wall = wall_by_bench.get(bench)
        cells.append("—" if wall is None else _fmt(wall))
        lines.append("| " + " | ".join(cells) + " |")
    mode_note = f" (mode: {args.mode})" if args.mode else ""
    text = (
        f"# Bench trend — last {len(columns)} runs{mode_note}\n\n"
        + "\n".join(lines)
        + "\n"
    )
    if args.out:
        Path(args.out).write_text(text)
        print(f"report written to {args.out}")
    else:
        print(text, end="")
    return 0


def add_bench_parser(commands: Any) -> None:
    """Register the ``bench`` subcommand family on the repro CLI."""
    bench = commands.add_parser(
        "bench", help="benchmark ledger: list/run/compare/report"
    )
    sub = bench.add_subparsers(dest="bench_command", required=True)

    list_parser = sub.add_parser("list", help="discovered bench scripts")
    list_parser.set_defaults(handler=cmd_list)

    run = sub.add_parser(
        "run", help="run benches through the harness, emit BENCH records"
    )
    run.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale (sets REPRO_BENCH_QUICK for every bench)",
    )
    run.add_argument(
        "--alloc",
        action="store_true",
        help="trace Python allocations (tracemalloc) so every case's "
        "wall section records peak_py_alloc_kb; 2-4x slower",
    )
    run.add_argument(
        "--seed", type=int, default=None, help="base RNG seed override"
    )
    run.add_argument(
        "-k",
        "--filter",
        action="append",
        default=[],
        help="only run benches whose name contains this substring "
        "(repeatable)",
    )
    run.set_defaults(handler=cmd_run)

    compare = sub.add_parser(
        "compare",
        help="classify metrics of two runs; exit 1 on regressions",
    )
    compare.add_argument(
        "baseline",
        nargs="?",
        default="baseline",
        help="'baseline' (committed file), 'latest', 'prev', 'run:<id>', "
        "'sha:<sha>', a BENCH/baseline JSON file or a directory",
    )
    compare.add_argument("candidate", nargs="?", default="latest")
    compare.add_argument(
        "--mode",
        choices=("quick", "full"),
        default="quick",
        help="ledger mode filter; quick and full runs never compare",
    )
    compare.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="default relative flat band when a metric declares none",
    )
    compare.add_argument("--json", action="store_true")
    compare.add_argument(
        "--verbose", action="store_true", help="also print flat metrics"
    )
    compare.set_defaults(handler=cmd_compare)

    report = sub.add_parser(
        "report", help="markdown trend table across the ledger"
    )
    report.add_argument("--mode", choices=("quick", "full"), default=None)
    report.add_argument(
        "--last", type=int, default=5, help="number of trailing runs"
    )
    report.add_argument("--out", default=None, help="write markdown here")
    report.set_defaults(handler=cmd_report)
