"""Resilience under fault injection: degradation instead of crashes.

Sweeps the seeded fault injector's pressure (``FaultConfig.scaled``)
through the DES engine on a worn drive and reports, per fault scale,
the uncorrectable-read rate, blocks retired, scrub activity, tail
latency and whether the drive ended in read-only degraded mode.  Scale
0 runs with faults disabled and must match a fault-free build exactly
— the regression gate on this bench is what keeps the fault subsystem
honest about its "byte-identical when off" contract.

Quick mode shrinks the trace and scale set: wiring coverage, not
meaningful numbers.
"""

from conftest import BENCH_SEED, QUICK, write_table

from repro.baselines.systems import SystemConfig, build_system
from repro.faults import FaultConfig, FaultInjector
from repro.ftl.config import SsdConfig
from repro.sim import DesSimulationEngine, ReadRetryConfig, ReadRetryModel
from repro.traces.workloads import make_workload

N_CHANNELS = 4
N_REQUESTS = 3_000 if QUICK else 20_000
FAULT_SCALES = (0.0, 10.0, 100.0) if QUICK else (0.0, 1.0, 10.0, 100.0)
#: Worn drive: high P/E pushes pages toward the sensing-ladder top,
#: where ladder exhaustion (the uncorrectable precondition) happens.
PE_CYCLES = 16_000
WORKLOAD = "fin-2"


def run_sweep(shared_policy):
    ssd_config = SsdConfig(
        n_blocks=256, pages_per_block=64, initial_pe_cycles=PE_CYCLES
    )
    workload = make_workload(WORKLOAD, ssd_config.logical_pages)
    trace = workload.generate(N_REQUESTS, seed=BENCH_SEED)
    results = {}
    for scale in FAULT_SCALES:
        injector = None
        if scale > 0:
            injector = FaultInjector(FaultConfig(enabled=True).scaled(scale))
        config = SystemConfig(
            ssd=ssd_config,
            footprint_pages=workload.footprint_pages,
            buffer_pages=512,
        )
        system = build_system(
            "flexlevel",
            config,
            level_adjust=shared_policy,
            fault_injector=injector,
        )
        engine = DesSimulationEngine(
            system,
            warmup_fraction=0.25,
            n_channels=N_CHANNELS,
            retry_model=ReadRetryModel(ReadRetryConfig(seed=2015)),
        )
        results[scale] = (engine.run(trace, WORKLOAD), system)
    return results


def test_fault_resilience(benchmark, results_dir, shared_policy, bench_case):
    bench_case.configure(
        n_channels=N_CHANNELS,
        n_requests=N_REQUESTS,
        pe_cycles=PE_CYCLES,
        workload=WORKLOAD,
        fault_scales=list(FAULT_SCALES),
    )
    results = benchmark.pedantic(
        run_sweep, args=(shared_policy,), rounds=1, iterations=1
    )

    lines = [
        f"flexlevel, DES engine, {N_CHANNELS} channels, {WORKLOAD}, "
        f"{N_REQUESTS} requests, {PE_CYCLES} P/E",
        "",
        f"{'scale':>6s} {'p99':>9s} {'uncorr':>7s} {'rate':>9s} "
        f"{'retired':>8s} {'scrubbed':>9s} {'rejected':>9s} {'mode':>10s}",
    ]
    metrics = {}
    for scale in FAULT_SCALES:
        result, system = results[scale]
        stats = system.ssd.stats
        mode = "read-only" if system.ssd.read_only else "normal"
        lines.append(
            f"{scale:6.0f} {result.percentile_response_us(99):9.1f} "
            f"{result.uncorrectable_reads:7d} {result.uncorrectable_rate():9.2e} "
            f"{stats.blocks_retired:8d} {stats.scrub_refreshed_pages:9d} "
            f"{stats.rejected_writes:9d} {mode:>10s}"
        )
        prefix = f"scale_{scale:g}"
        metrics[f"{prefix}.p99_response_us"] = result.percentile_response_us(99)
        metrics[f"{prefix}.uncorrectable_rate"] = result.uncorrectable_rate()
        metrics[f"{prefix}.blocks_retired"] = float(stats.blocks_retired)
        metrics[f"{prefix}.read_only"] = float(system.ssd.read_only)
        metrics[f"{prefix}.scrub_refreshed_pages"] = float(
            stats.scrub_refreshed_pages
        )
    write_table(results_dir, "fault_resilience", lines)
    bench_case.emit(metrics, table="fault_resilience")

    # Scale 0 is a clean run: no fault counters, no fault stats keys.
    clean_result, clean_system = results[0.0]
    assert clean_system.ssd.fault_injector is None
    assert clean_result.uncorrectable_reads == 0
    assert "uncorrectable_reads" not in clean_result.stats
    assert clean_system.ssd.stats.blocks_retired == 0
    assert not clean_system.ssd.read_only
    # The highest pressure visibly degrades — and completes without
    # raising (that it returned at all is the resilience claim).
    stressed_result, stressed_system = results[FAULT_SCALES[-1]]
    assert stressed_system.ssd.stats.blocks_retired > 0
    assert stressed_result.uncorrectable_reads > 0
    # Fault pressure can only grow the retirement count.
    retired = [
        results[scale][1].ssd.stats.blocks_retired for scale in FAULT_SCALES
    ]
    assert retired == sorted(retired)
