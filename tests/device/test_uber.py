"""Tests for UBER estimation (paper Eq. 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.uber import (
    LDPC_CODEWORD_BITS,
    LDPC_INFO_BITS,
    code_margin,
    required_correctable_bits,
    uber,
)
from repro.errors import ConfigurationError


class TestUber:
    def test_zero_error_rate(self):
        assert uber(4, 100, 90, 0.0) == 0.0

    def test_perfect_code(self):
        assert uber(100, 100, 90, 0.01) == 0.0

    def test_no_correction_equals_any_error_probability(self):
        # k = 0: uncorrectable iff any bit flips
        p = 1e-4
        m, n = 1000, 900
        expected = (1 - (1 - p) ** m) / n
        assert uber(0, m, n, p) == pytest.approx(expected, rel=1e-6)

    def test_monotone_decreasing_in_k(self):
        values = [uber(k, 1000, 900, 1e-3) for k in range(0, 20, 4)]
        assert values == sorted(values, reverse=True)

    def test_monotone_increasing_in_p(self):
        values = [uber(5, 1000, 900, p) for p in (1e-4, 1e-3, 1e-2)]
        assert values == sorted(values)

    def test_paper_code_shape(self):
        # rate-8/9 on 4 KB blocks
        assert LDPC_INFO_BITS == 32768
        assert LDPC_CODEWORD_BITS == 36864
        assert LDPC_INFO_BITS / LDPC_CODEWORD_BITS == pytest.approx(8 / 9)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            uber(1, 10, 20, 0.1)  # n > m
        with pytest.raises(ConfigurationError):
            uber(-1, 10, 5, 0.1)
        with pytest.raises(ConfigurationError):
            uber(1, 10, 5, 1.5)


class TestRequiredCorrectableBits:
    def test_meets_target(self):
        k = required_correctable_bits(1e-3, m=4096, n=3641, target=1e-12)
        assert uber(k, 4096, 3641, 1e-3) <= 1e-12
        if k > 0:
            assert uber(k - 1, 4096, 3641, 1e-3) > 1e-12

    def test_grows_with_ber(self):
        k_low = required_correctable_bits(1e-4, m=4096, n=3641, target=1e-12)
        k_high = required_correctable_bits(4e-3, m=4096, n=3641, target=1e-12)
        assert k_high > k_low

    def test_paper_scale_at_high_ber(self):
        """At BER 1e-2 a rate-8/9 code on 4 KB blocks needs hundreds of
        correctable bits for UBER 1e-15 — BCH territory ends here."""
        k = required_correctable_bits(1e-2)
        assert 400 < k < 800

    def test_rejects_non_positive_target(self):
        with pytest.raises(ConfigurationError):
            required_correctable_bits(1e-3, target=0.0)


class TestCodeMargin:
    def test_above_one_when_meeting_target(self):
        k = required_correctable_bits(1e-3, m=4096, n=3641, target=1e-12)
        assert code_margin(k, 4096, 3641, 1e-3, target=1e-12) >= 1.0

    def test_infinite_for_zero_uber(self):
        assert code_margin(10, 100, 90, 0.0) == float("inf")


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(0, 30),
    p=st.floats(1e-6, 0.2),
)
def test_property_uber_bounded(k, p):
    value = uber(k, 512, 480, p)
    assert 0.0 <= value <= 1.0
