"""Tests for the calibration sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    CONSTANTS,
    perturbed_analyzer,
    run_sensitivity,
    table5_matrix,
)
from repro.errors import ConfigurationError


class TestPerturbedAnalyzer:
    def test_identity_factor_matches_calibration(self):
        from repro.analysis.calibration import calibrated_analyzer
        from repro.device.voltages import normal_mlc_plan

        ours = perturbed_analyzer("kd", 1.0)
        reference = calibrated_analyzer(normal_mlc_plan())
        assert ours.retention_ber(5000, 168).total == pytest.approx(
            reference.retention_ber(5000, 168).total, rel=1e-9
        )

    def test_scaling_kd_moves_ber(self):
        low = perturbed_analyzer("kd", 0.5).retention_ber(5000, 720).total
        high = perturbed_analyzer("kd", 2.0).retention_ber(5000, 720).total
        assert high > low

    def test_unknown_constant_rejected(self):
        with pytest.raises(ConfigurationError):
            perturbed_analyzer("nope", 1.0)

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            perturbed_analyzer("kd", 0.0)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def results(self):
        return run_sensitivity(factors=(0.8, 1.25))

    def test_covers_all_constants(self, results):
        assert {r.constant for r in results} == set(CONSTANTS)
        assert len(results) == len(CONSTANTS) * 2

    def test_shape_survives_every_perturbation(self, results):
        """The headline robustness claim: +-25 % on any one constant
        never breaks Table 5's structure."""
        for result in results:
            assert result.shape_preserved, (result.constant, result.factor)

    def test_perturbations_move_some_cells(self, results):
        assert any(r.cells_changed > 0 for r in results)

    def test_level_deltas_bounded(self, results):
        for result in results:
            assert result.max_level_delta <= 4


class TestMatrix:
    def test_matrix_shape(self):
        matrix = table5_matrix(perturbed_analyzer("kd", 1.0))
        assert len(matrix) == 4 * 5
        assert all(v >= 0 for v in matrix.values())
