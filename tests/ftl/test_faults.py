"""FTL fault handling: retirement, degraded mode, scrub, error context."""

import numpy as np
import pytest

from repro.core.level_adjust import CellMode
from repro.errors import ConfigurationError, OutOfSpaceError
from repro.faults import FaultConfig, FaultInjector
from repro.ftl.config import SsdConfig
from repro.ftl.ssd import Ssd
from repro.units import HOUR_US


class ScriptedInjector(FaultInjector):
    """Injector whose program/erase status checks follow a script.

    Each script entry answers one status check; past the end every
    check passes.  Manufacture-bad sampling is disabled so tests
    control the block population exactly.
    """

    def __init__(self, program_script=(), erase_script=(), spare_fraction=0.02):
        super().__init__(
            FaultConfig(
                enabled=True,
                initial_bad_block_rate=0.0,
                spare_block_fraction=spare_fraction,
            )
        )
        self._program_script = list(program_script)
        self._erase_script = list(erase_script)

    def program_fails(self, pe_cycles, age_hours):
        if self._program_script:
            return self._program_script.pop(0)
        return False

    def erase_fails(self, pe_cycles):
        if self._erase_script:
            return self._erase_script.pop(0)
        return False


def make_ssd(prefill_fraction=0.5, injector=None, **overrides):
    config = SsdConfig(
        n_blocks=64,
        pages_per_block=16,
        gc_free_block_threshold=2,
        initial_pe_cycles=6000,
        **overrides,
    )
    prefill = int(config.logical_pages * prefill_fraction)
    return Ssd(config, prefill_pages=prefill, fault_injector=injector)


class TestManufactureBadBlocks:
    def test_bad_blocks_mapped_out(self):
        injector = FaultInjector(
            FaultConfig(enabled=True, initial_bad_block_rate=0.1, seed=3)
        )
        ssd = make_ssd(0.3, injector=injector)
        bad = ssd.bad_block_table.manufacture_bad
        assert bad  # 64 blocks at 10 % — expected ~6
        assert ssd.stats.manufacture_bad_blocks == len(bad)
        for block in bad:
            assert ssd.block_usable_pages(block) == 0

    def test_bad_blocks_shrink_page_supply(self):
        injector = FaultInjector(
            FaultConfig(enabled=True, initial_bad_block_rate=0.1, seed=3)
        )
        plain = make_ssd(0.0)
        faulty = make_ssd(0.0, injector=injector)
        n_bad = len(faulty.bad_block_table.manufacture_bad)
        assert (
            faulty.physical_page_supply()
            == plain.physical_page_supply() - n_bad * 16
        )

    def test_too_many_bad_blocks_rejected(self):
        injector = FaultInjector(
            FaultConfig(enabled=True, initial_bad_block_rate=1.0)
        )
        with pytest.raises(ConfigurationError):
            make_ssd(0.0, injector=injector)

    def test_disabled_injector_is_dropped(self):
        ssd = make_ssd(0.0, injector=FaultInjector(FaultConfig(enabled=False)))
        assert ssd.fault_injector is None
        assert ssd.bad_block_table is None


class TestProgramFailure:
    def test_failed_program_retires_block_and_rewrites(self):
        injector = ScriptedInjector(program_script=[True])
        ssd = make_ssd(0.0, injector=injector)
        ssd.host_write(5, CellMode.NORMAL, now_us=0.0)
        assert ssd.stats.program_fail_events == 1
        assert ssd.stats.blocks_retired == 1
        assert not ssd.read_only
        # The write still landed: the page is mapped, outside the bad block.
        assert ssd.mode_of(5) is CellMode.NORMAL
        [retired] = ssd.bad_block_table.grown
        assert ssd.block_usable_pages(retired) == 0

    def test_spare_exhaustion_enters_read_only(self):
        # One spare (64 blocks x 0.02); two consecutive failures burn it
        # and degrade the drive — without raising.
        injector = ScriptedInjector(program_script=[True, True])
        ssd = make_ssd(0.0, injector=injector)
        ssd.host_write(5, CellMode.NORMAL, now_us=0.0)
        assert ssd.read_only
        assert ssd.stats.blocks_retired == 1
        assert ssd.stats.retirements_skipped == 1
        assert ssd.stats.rejected_writes == 1
        assert ssd.bad_block_table.exhausted

    def test_read_only_rejects_writes_keeps_reads(self):
        injector = ScriptedInjector(program_script=[False, True, True])
        ssd = make_ssd(0.0, injector=injector)
        ssd.host_write(3, CellMode.NORMAL, now_us=0.0)  # survives (pre-fail)
        # The scripted failures trip on the next write.
        ssd.host_write(5, CellMode.NORMAL, now_us=0.0)
        assert ssd.read_only
        rejected_before = ssd.stats.rejected_writes
        fg, bg = ssd.host_write(7, CellMode.NORMAL, now_us=0.0)
        assert (fg, bg) == (0.0, 0.0)
        assert ssd.stats.rejected_writes == rejected_before + 1
        assert ssd.mode_of(7) is None  # never landed
        # Reads still serve; old data is intact.
        info = ssd.read_info(3, now_us=0.0)
        assert info.mode is CellMode.NORMAL

    def test_read_only_skips_migration(self):
        injector = ScriptedInjector(program_script=[False, True, True])
        ssd = make_ssd(0.0, injector=injector)
        ssd.host_write(3, CellMode.NORMAL, now_us=0.0)
        ssd.host_write(5, CellMode.NORMAL, now_us=0.0)  # degrades here
        assert ssd.read_only
        assert ssd.migrate(3, CellMode.SLC, now_us=0.0) == (0.0, 0.0)
        assert ssd.mode_of(3) is CellMode.NORMAL  # unmoved

    def test_retired_block_preserves_relocated_data(self):
        injector = ScriptedInjector(program_script=[False] * 10 + [True])
        ssd = make_ssd(0.0, injector=injector)
        for lpn in range(11):
            ssd.host_write(lpn, CellMode.NORMAL, now_us=0.0)
        assert ssd.stats.blocks_retired == 1
        # Every page written before the failure is still readable.
        for lpn in range(11):
            assert ssd.mode_of(lpn) is CellMode.NORMAL


class TestEraseFailure:
    def test_failed_erase_retires_victim(self):
        injector = ScriptedInjector(erase_script=[True])
        ssd = make_ssd(0.9, injector=injector)
        rng = np.random.default_rng(4)
        footprint = int(ssd.config.logical_pages * 0.9)
        for _ in range(2000):
            ssd.host_write(int(rng.integers(footprint)), CellMode.NORMAL, 0.0)
            if ssd.stats.erase_fail_events:
                break
        assert ssd.stats.erase_fail_events == 1
        assert ssd.stats.blocks_retired == 1
        [retired] = ssd.bad_block_table.grown
        assert ssd.block_usable_pages(retired) == 0


class TestScrub:
    def test_refresh_resets_data_age(self):
        ssd = make_ssd(0.0, injector=ScriptedInjector())
        ssd.host_write(3, CellMode.NORMAL, now_us=0.0)
        work = ssd.refresh(3, now_us=100 * HOUR_US)
        assert work > 0.0
        assert ssd.stats.scrub_refreshed_pages == 1
        assert ssd.stats.scrub_program_pages == 1
        info = ssd.read_info(3, now_us=100 * HOUR_US)
        assert info.age_hours == pytest.approx(0.0)

    def test_refresh_unmapped_is_noop(self):
        ssd = make_ssd(0.0, injector=ScriptedInjector())
        assert ssd.refresh(3, now_us=0.0) == 0.0
        assert ssd.stats.scrub_refreshed_pages == 0

    def test_scrub_skips_young_pages(self):
        ssd = make_ssd(0.0, injector=ScriptedInjector())
        ssd.host_write(3, CellMode.NORMAL, now_us=0.0)
        assert ssd.scrub_if_needed(3, required_levels=2, now_us=HOUR_US) == 0.0
        assert ssd.stats.scrub_refreshed_pages == 0

    def test_scrub_skips_below_trigger(self):
        ssd = make_ssd(0.0, injector=ScriptedInjector())
        ssd.host_write(3, CellMode.NORMAL, now_us=0.0)
        assert (
            ssd.scrub_if_needed(3, required_levels=0, now_us=100 * HOUR_US)
            == 0.0
        )

    def test_scrub_refreshes_old_hot_ber_pages(self):
        ssd = make_ssd(0.0, injector=ScriptedInjector())
        ssd.host_write(3, CellMode.NORMAL, now_us=0.0)
        work = ssd.scrub_if_needed(3, required_levels=1, now_us=100 * HOUR_US)
        assert work > 0.0
        assert ssd.stats.scrub_refreshed_pages == 1

    def test_scrub_counted_not_run_in_read_only(self):
        injector = ScriptedInjector(program_script=[False, True, True])
        ssd = make_ssd(0.0, injector=injector)
        ssd.host_write(3, CellMode.NORMAL, now_us=0.0)
        ssd.host_write(5, CellMode.NORMAL, now_us=0.0)  # degrades
        assert ssd.read_only
        work = ssd.scrub_if_needed(3, required_levels=2, now_us=100 * HOUR_US)
        assert work == 0.0
        assert ssd.stats.scrub_skipped_pages == 1
        assert ssd.stats.scrub_refreshed_pages == 0

    def test_scrub_disabled_by_config(self):
        injector = FaultInjector(
            FaultConfig(
                enabled=True, initial_bad_block_rate=0.0, scrub_enabled=False
            )
        )
        ssd = make_ssd(0.0, injector=injector)
        ssd.host_write(3, CellMode.NORMAL, now_us=0.0)
        assert (
            ssd.scrub_if_needed(3, required_levels=5, now_us=100 * HOUR_US)
            == 0.0
        )


class TestOutOfSpaceContext:
    def test_error_names_the_exhausted_pool(self):
        """The error message carries the pool accounting needed to act
        on it — free count, per-mode in-use counts, GC threshold."""
        ssd = make_ssd(0.0, over_provisioning=0.1)
        with pytest.raises(OutOfSpaceError) as excinfo:
            for lpn in range(ssd.config.logical_pages):
                ssd.host_write(lpn, CellMode.REDUCED, now_us=0.0)
        message = str(excinfo.value)
        assert "pool exhausted" in message
        assert "free=" in message
        assert "reduced=" in message
        assert "gc_threshold=" in message

    def test_error_reports_bad_block_state_when_faulty(self):
        injector = FaultInjector(
            FaultConfig(enabled=True, initial_bad_block_rate=0.1, seed=3)
        )
        ssd = make_ssd(0.0, injector=injector, over_provisioning=0.1)
        with pytest.raises(OutOfSpaceError) as excinfo:
            for lpn in range(ssd.config.logical_pages):
                ssd.host_write(lpn, CellMode.REDUCED, now_us=0.0)
        message = str(excinfo.value)
        assert "bad-blocks manufacture=" in message
        assert "spares_remaining=" in message


class TestMetricsPublish:
    def test_fault_gauges_published(self):
        from repro.obs import MetricsRegistry

        injector = ScriptedInjector(program_script=[True])
        ssd = make_ssd(0.0, injector=injector)
        ssd.host_write(5, CellMode.NORMAL, now_us=0.0)
        registry = MetricsRegistry()
        ssd.publish_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["ftl.bbt.retired"] == 1.0
        assert snapshot["ftl.bbt.program_failures"] == 1.0
        assert snapshot["ftl.degraded.read_only"] == 0.0
        assert snapshot["ftl.bbt.spare_remaining"] == 0.0
