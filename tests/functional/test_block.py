"""Tests for the bit-accurate functional block."""

import numpy as np
import pytest

from repro.core.level_adjust import CellMode
from repro.device.geometry import NandGeometry
from repro.functional.block import FunctionalBlock
from repro.errors import ConfigurationError, ProgramError


@pytest.fixture
def geometry():
    return NandGeometry(wordlines_per_block=3, cells_per_wordline=64)


def fill_block(block, rng):
    pages = []
    for offset in range(block.n_pages):
        bits = rng.integers(0, 2, block.page_bits).astype(np.uint8)
        block.program_page(offset, bits)
        pages.append(bits)
    return pages


class TestGeometry:
    def test_normal_page_count(self, geometry):
        block = FunctionalBlock(geometry, CellMode.NORMAL)
        assert block.n_pages == 3 * 4

    def test_reduced_page_count_is_three_quarters(self, geometry):
        normal = FunctionalBlock(geometry, CellMode.NORMAL)
        reduced = FunctionalBlock(geometry, CellMode.REDUCED)
        assert reduced.n_pages == normal.n_pages * 3 // 4

    def test_page_bits_equal_across_modes(self, geometry):
        assert (
            FunctionalBlock(geometry, CellMode.NORMAL).page_bits
            == FunctionalBlock(geometry, CellMode.REDUCED).page_bits
        )

    def test_slc_not_supported(self, geometry):
        with pytest.raises(ConfigurationError):
            FunctionalBlock(geometry, CellMode.SLC)


class TestRoundTrips:
    @pytest.mark.parametrize("mode", [CellMode.NORMAL, CellMode.REDUCED])
    def test_full_block_roundtrip(self, geometry, rng, mode):
        block = FunctionalBlock(geometry, mode)
        pages = fill_block(block, rng)
        for offset, bits in enumerate(pages):
            assert np.array_equal(block.read_page(offset), bits), offset

    def test_partial_program_reads_back(self, geometry, rng):
        block = FunctionalBlock(geometry, CellMode.REDUCED)
        bits = rng.integers(0, 2, block.page_bits).astype(np.uint8)
        block.program_page(0, bits)
        assert np.array_equal(block.read_page(0), bits)

    def test_erase_and_reuse(self, geometry, rng):
        block = FunctionalBlock(geometry, CellMode.NORMAL)
        fill_block(block, rng)
        block.erase()
        assert block.pages_programmed == 0
        pages = fill_block(block, rng)
        assert np.array_equal(block.read_page(3), pages[3])


class TestConstraints:
    def test_sequential_program_enforced(self, geometry, rng):
        block = FunctionalBlock(geometry, CellMode.NORMAL)
        bits = rng.integers(0, 2, block.page_bits).astype(np.uint8)
        with pytest.raises(ProgramError):
            block.program_page(1, bits)

    def test_unprogrammed_read_rejected(self, geometry):
        block = FunctionalBlock(geometry, CellMode.NORMAL)
        with pytest.raises(ConfigurationError):
            block.read_page(0)

    def test_offset_bounds(self, geometry, rng):
        block = FunctionalBlock(geometry, CellMode.REDUCED)
        fill_block(block, rng)
        with pytest.raises(ConfigurationError):
            block.read_page(block.n_pages)


class TestDrift:
    def test_drift_produces_bounded_bit_errors(self, geometry, rng):
        block = FunctionalBlock(geometry, CellMode.REDUCED)
        pages = fill_block(block, rng)
        distorted = block.inject_drift(rng, downward_rate=0.02)
        errors = sum(
            int((block.read_page(i) != bits).sum()) for i, bits in enumerate(pages)
        )
        assert distorted > 0
        assert 0 < errors <= 2 * distorted
