"""Tests for the quasi-cyclic LDPC construction."""

import numpy as np
import pytest

from repro.ecc.ldpc.code import LdpcCode
from repro.ecc.ldpc.construction import count_4cycles
from repro.ecc.ldpc.decoder import MinSumDecoder
from repro.ecc.ldpc.qc import circulant, qc_construction
from repro.errors import ConfigurationError


class TestCirculant:
    def test_identity_at_zero_shift(self):
        assert np.array_equal(circulant(4, 0), np.eye(4, dtype=np.uint8))

    def test_shift_wraps(self):
        assert np.array_equal(circulant(3, 3), np.eye(3, dtype=np.uint8))

    def test_single_one_per_row_and_column(self):
        c = circulant(7, 3)
        assert np.all(c.sum(axis=0) == 1)
        assert np.all(c.sum(axis=1) == 1)

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            circulant(0, 1)


class TestQcConstruction:
    def test_shape_and_weights(self):
        h = qc_construction(rows=3, cols=7, z=13)
        assert h.shape == (39, 91)
        assert np.all(h.sum(axis=0) == 3)
        assert np.all(h.sum(axis=1) == 7)

    def test_girth_at_least_six(self):
        h = qc_construction(rows=3, cols=7, z=13)
        assert count_4cycles(h) == 0

    def test_code_functions_end_to_end(self, rng):
        code = LdpcCode(qc_construction(rows=3, cols=11, z=11))
        assert code.rate > 0.7
        decoder = MinSumDecoder(code)
        cw = code.encode(rng.integers(0, 2, code.k).astype(np.uint8))
        llrs = (1.0 - 2.0 * cw) * 6.0
        llrs[:2] *= -1  # two channel errors
        result = decoder.decode(llrs)
        assert np.array_equal(result.codeword, cw)

    def test_rejects_composite_z(self):
        with pytest.raises(ConfigurationError):
            qc_construction(rows=3, cols=7, z=12)

    def test_rejects_too_wide_base(self):
        with pytest.raises(ConfigurationError):
            qc_construction(rows=3, cols=14, z=13)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ConfigurationError):
            qc_construction(rows=7, cols=7, z=13)
