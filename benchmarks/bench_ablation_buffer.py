"""Ablation: write-buffer size (the paper adds a write-back buffer to
FlashSim without sizing it).

Sweeps the buffer on a write-heavy workload: a larger buffer absorbs
more rewrites of hot pages, cutting flash programs and hence GC.
"""

from conftest import BENCH_SEED, QUICK, write_table

from repro.analysis.experiments import SystemExperimentConfig
from repro.baselines.systems import SystemConfig, build_system
from repro.sim.engine import SimulationEngine
from repro.traces.workloads import make_workload

N_REQUESTS = 4_000 if QUICK else 20_000
BUFFER_SWEEP = (0, 64, 512, 2048)


def _run_sweep(shared_policy):
    config = SystemExperimentConfig(
        n_blocks=256, n_requests=N_REQUESTS, seed=BENCH_SEED
    )
    ssd_config = config.ssd_config()
    workload = make_workload("prj-1", ssd_config.logical_pages)
    trace = workload.generate(config.n_requests, seed=BENCH_SEED)
    out = {}
    for buffer_pages in BUFFER_SWEEP:
        system_config = SystemConfig(
            ssd=ssd_config,
            footprint_pages=workload.footprint_pages,
            buffer_pages=buffer_pages,
        )
        system = build_system("flexlevel", system_config, level_adjust=shared_policy)
        result = SimulationEngine(system, warmup_fraction=0.25).run(trace, "prj-1")
        out[buffer_pages] = {
            "mean_response_us": result.mean_response_us(),
            "flash_programs": result.stats["total_program_pages"],
            "erases": result.stats["erase_blocks"],
            "buffer_hits": result.stats["buffer_hits"],
        }
    return out


def test_ablation_buffer_size(benchmark, results_dir, shared_policy, bench_case):
    bench_case.configure(n_requests=N_REQUESTS, buffer_sweep=list(BUFFER_SWEEP))
    results = benchmark.pedantic(
        _run_sweep, args=(shared_policy,), rounds=1, iterations=1
    )

    lines = ["buffer (pages)  response (us)  flash programs  erases  read hits"]
    for pages, row in sorted(results.items()):
        lines.append(
            f"{pages:14d}  {row['mean_response_us']:13.1f}  "
            f"{row['flash_programs']:14.0f}  {row['erases']:6.0f}  "
            f"{row['buffer_hits']:9.0f}"
        )
    write_table(results_dir, "ablation_buffer", lines)

    bench_case.emit(
        {
            "buffer0_mean_response_us": results[0]["mean_response_us"],
            "buffer512_mean_response_us": results[512]["mean_response_us"],
            "buffer2048_flash_programs": results[2048]["flash_programs"],
            "program_reduction": results[0]["flash_programs"]
            / max(results[2048]["flash_programs"], 1.0),
        },
        specs={"program_reduction": {"direction": "higher"}},
        table="ablation_buffer",
    )

    # A bigger buffer absorbs rewrites: flash programs fall.
    assert results[2048]["flash_programs"] < results[0]["flash_programs"]
    if not QUICK:
        programs = [results[p]["flash_programs"] for p in sorted(results)]
        assert programs == sorted(programs, reverse=True)
