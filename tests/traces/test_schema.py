"""Tests for the trace record format."""

import pytest

from repro.traces.schema import TraceRecord
from repro.errors import TraceFormatError


class TestTraceRecord:
    def test_pages_range(self):
        record = TraceRecord(0.0, 10, 3, False)
        assert list(record.pages()) == [10, 11, 12]
        assert record.last_lpn == 12

    def test_single_page(self):
        record = TraceRecord(5.0, 0, 1, True)
        assert list(record.pages()) == [0]

    def test_rejects_negative_timestamp(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(-1.0, 0, 1, False)

    def test_rejects_negative_lpn(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(0.0, -1, 1, False)

    def test_rejects_zero_size(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(0.0, 0, 0, False)
