"""Tests for the fault-injection config, injector and bad-block table."""

import pytest

from repro.errors import ConfigurationError, FtlError
from repro.faults import BadBlockTable, FaultConfig, FaultInjector


class TestFaultConfig:
    def test_defaults_disabled(self):
        assert FaultConfig().enabled is False

    @pytest.mark.parametrize(
        "field,value",
        [
            ("initial_bad_block_rate", -0.1),
            ("initial_bad_block_rate", 1.5),
            ("program_fail_base", 2.0),
            ("erase_fail_base", -1e-9),
            ("failure_cap", 1.01),
            ("spare_block_fraction", -0.5),
            ("uncorrectable_scale", 7.0),
        ],
    )
    def test_rejects_rates_outside_unit_interval(self, field, value):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: value})

    def test_rejects_bad_reference_and_exponent(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(pe_reference=0.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(wear_exponent=-1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(age_rate_per_khour=-0.1)
        with pytest.raises(ConfigurationError):
            FaultConfig(scrub_trigger_levels=0)
        with pytest.raises(ConfigurationError):
            FaultConfig(scrub_min_age_hours=-1.0)

    def test_scaled_multiplies_stochastic_rates_only(self):
        config = FaultConfig(enabled=True)
        scaled = config.scaled(10.0)
        assert scaled.program_fail_base == pytest.approx(
            config.program_fail_base * 10
        )
        assert scaled.erase_fail_base == pytest.approx(config.erase_fail_base * 10)
        assert scaled.uncorrectable_scale == pytest.approx(
            min(1.0, config.uncorrectable_scale * 10)
        )
        # Structural knobs are untouched.
        assert scaled.initial_bad_block_rate == config.initial_bad_block_rate
        assert scaled.spare_block_fraction == config.spare_block_fraction
        assert scaled.seed == config.seed
        assert scaled.enabled is True

    def test_scaled_caps_at_one(self):
        scaled = FaultConfig().scaled(1e9)
        assert scaled.program_fail_base == 1.0
        assert scaled.uncorrectable_scale == 1.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FaultConfig().scaled(-1.0)

    def test_to_dict_round_trips(self):
        config = FaultConfig(enabled=True, seed=7)
        rebuilt = FaultConfig(**config.to_dict())
        assert rebuilt == config


class TestFaultInjector:
    def test_manufacture_bad_deterministic(self):
        config = FaultConfig(enabled=True, initial_bad_block_rate=0.05)
        first = FaultInjector(config).sample_manufacture_bad(4096)
        second = FaultInjector(config).sample_manufacture_bad(4096)
        assert first == second
        assert first == sorted(first)
        assert first  # 4096 blocks at 5 % — statistically certain

    def test_manufacture_bad_depends_on_seed(self):
        a = FaultInjector(FaultConfig(seed=1, initial_bad_block_rate=0.05))
        b = FaultInjector(FaultConfig(seed=2, initial_bad_block_rate=0.05))
        assert a.sample_manufacture_bad(4096) != b.sample_manufacture_bad(4096)

    def test_zero_rate_yields_no_bad_blocks(self):
        injector = FaultInjector(FaultConfig(initial_bad_block_rate=0.0))
        assert injector.sample_manufacture_bad(4096) == []

    def test_spare_budget(self):
        injector = FaultInjector(FaultConfig(spare_block_fraction=0.02))
        assert injector.spare_blocks(256) == 5
        assert injector.spare_blocks(4) == 1  # never zero on a real drive
        assert injector.spare_blocks(0) == 0

    def test_failure_probability_monotonic_in_pe(self):
        injector = FaultInjector(FaultConfig())
        probabilities = [
            injector.program_fail_probability(pe, 0.0)
            for pe in (1000, 3000, 6000, 12000)
        ]
        assert probabilities == sorted(probabilities)
        assert probabilities[0] < probabilities[-1]

    def test_failure_probability_monotonic_in_age(self):
        injector = FaultInjector(FaultConfig())
        young = injector.program_fail_probability(3000, 0.0)
        old = injector.program_fail_probability(3000, 5000.0)
        assert old > young

    def test_failure_probability_capped(self):
        injector = FaultInjector(
            FaultConfig(program_fail_base=1.0, failure_cap=0.25)
        )
        assert injector.program_fail_probability(50000, 1e6) == 0.25
        assert injector.erase_fail_probability(50000) <= 0.25

    def test_reference_pe_gives_base_rate(self):
        config = FaultConfig(program_fail_base=1e-3, pe_reference=3000.0)
        injector = FaultInjector(config)
        assert injector.wear_acceleration(3000.0) == pytest.approx(1.0)
        assert injector.program_fail_probability(3000.0, 0.0) == pytest.approx(1e-3)

    def test_uncorrectable_scaling(self):
        always = FaultInjector(FaultConfig(uncorrectable_scale=1.0))
        never = FaultInjector(FaultConfig(uncorrectable_scale=0.0))
        assert always.read_uncorrectable(1.0) is True
        assert never.read_uncorrectable(1.0) is False
        assert always.read_uncorrectable(0.0) is False

    def test_streams_independent(self):
        """Draining one fault stream does not shift another."""
        config = FaultConfig(enabled=True, program_fail_base=0.5, failure_cap=0.5)
        plain = FaultInjector(config)
        drained = FaultInjector(config)
        for _ in range(100):
            drained.erase_fails(6000)  # burn the erase stream only
        a = [plain.program_fails(6000, 0.0) for _ in range(50)]
        b = [drained.program_fails(6000, 0.0) for _ in range(50)]
        assert a == b


class TestBadBlockTable:
    def test_manufacture_bad_marked_without_spares(self):
        table = BadBlockTable(64, spare_blocks=2, manufacture_bad=[3, 9])
        assert table.is_bad(3) and table.is_bad(9)
        assert not table.is_bad(4)
        assert table.spare_remaining == 2
        assert len(table) == 2

    def test_retire_consumes_spares_in_order(self):
        table = BadBlockTable(64, spare_blocks=2)
        table.retire(10)
        table.retire(20)
        assert table.grown == [10, 20]
        assert table.spare_remaining == 0
        assert table.exhausted

    def test_retire_past_budget_raises(self):
        table = BadBlockTable(64, spare_blocks=1)
        table.retire(10)
        with pytest.raises(FtlError):
            table.retire(11)

    def test_double_retire_raises(self):
        table = BadBlockTable(64, spare_blocks=4)
        table.retire(10)
        with pytest.raises(FtlError):
            table.retire(10)

    def test_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            BadBlockTable(64, spare_blocks=1, manufacture_bad=[64])
        table = BadBlockTable(64, spare_blocks=1)
        with pytest.raises(ConfigurationError):
            table.retire(-1)

    def test_snapshot(self):
        table = BadBlockTable(64, spare_blocks=3, manufacture_bad=[1])
        table.retire(5)
        assert table.snapshot() == {
            "manufacture_bad": 1,
            "grown_bad": 1,
            "spare_blocks": 3,
            "spare_remaining": 2,
        }
