"""Multi-window SLO burn-rate alerting.

An error budget of ``1 - target`` (e.g. 0.1% for a 99.9% SLO) burns at
rate 1.0 when the bad-event fraction exactly equals the budget.  A
burn-rate alert fires when the budget is burning *fast* — the
Google-SRE multi-window form requires **both** a fast window (quick
reaction, noisy alone) and a slow window (evidence the burn is
sustained) to exceed the threshold simultaneously, which kills the
single-window flappiness without giving up reaction time.

Two bad/total sources feed the same rule machinery:

* **request-level** (serve runs) — per tenant, bad =
  ``serve.tenant.<t>.slo_violations + .rejections``, total =
  ``.completions + .rejections``.  A rejected request is a burned
  request: the tenant asked and was refused.
* **window-level tail** (plain sim runs) — a window is bad when its
  ``sim.response_us`` cell ``max`` exceeds the SLO bound; total is
  every window with traffic.  This is the tail-breach fraction at
  window granularity.

Alerts are rising-edge only: a rule fires when the pair condition
becomes true and cannot fire again until it has been false (simple
hysteresis; a sustained overload yields one alert, not one per
window).  All arithmetic is plain float over deterministic window
sums, so the alert sequence is a pure function of the run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.timeseries import WindowedRecorder

#: Stock fast/slow window pairs (in windows) with burn thresholds,
#: after the SRE-workbook 5m/1h + 30m/6h ladder scaled to window
#: counts.  (pair_name, fast, slow, threshold)
DEFAULT_PAIRS = (
    ("fast", 6, 72, 14.4),
    ("slow", 30, 360, 6.0),
)

#: Ignore windows until the slow window has at least this many events —
#: a burn fraction over three requests is noise, not a page.
DEFAULT_MIN_TOTAL = 20.0


@dataclass(frozen=True)
class BurnRateAlarm:
    """Evidence for one burn-rate firing."""

    pair: str
    fast_windows: int
    slow_windows: int
    threshold: float
    fast_burn: float
    slow_burn: float
    fast_bad: float
    fast_total: float
    slow_bad: float
    slow_total: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "pair": self.pair,
            "fast_windows": self.fast_windows,
            "slow_windows": self.slow_windows,
            "threshold": self.threshold,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "fast_bad": self.fast_bad,
            "fast_total": self.fast_total,
            "slow_bad": self.slow_bad,
            "slow_total": self.slow_total,
        }


class _PairState:
    """Rolling bad/total sums for one fast/slow pair + hysteresis."""

    def __init__(self, name: str, fast: int, slow: int, threshold: float):
        if not 0 < fast < slow:
            raise ConfigurationError(
                f"burn pair {name!r}: need 0 < fast < slow, "
                f"got {fast}/{slow}"
            )
        if not threshold > 0:
            raise ConfigurationError(
                f"burn pair {name!r}: threshold must be > 0, got {threshold}"
            )
        self.name = name
        self.fast = fast
        self.slow = slow
        self.threshold = threshold
        self._window: deque[tuple[float, float]] = deque(maxlen=slow)
        self._active = False

    def update(
        self, bad: float, total: float, budget: float, min_total: float
    ) -> BurnRateAlarm | None:
        self._window.append((bad, total))
        rows = list(self._window)
        slow_bad = sum(b for b, _ in rows)
        slow_total = sum(t for _, t in rows)
        fast_rows = rows[-self.fast :]
        fast_bad = sum(b for b, _ in fast_rows)
        fast_total = sum(t for _, t in fast_rows)
        if slow_total < min_total or fast_total <= 0:
            self._active = False
            return None
        fast_burn = (fast_bad / fast_total) / budget
        slow_burn = (slow_bad / slow_total) / budget
        firing = fast_burn > self.threshold and slow_burn > self.threshold
        if not firing:
            self._active = False
            return None
        if self._active:
            return None
        self._active = True
        return BurnRateAlarm(
            pair=self.name,
            fast_windows=self.fast,
            slow_windows=self.slow,
            threshold=self.threshold,
            fast_burn=fast_burn,
            slow_burn=slow_burn,
            fast_bad=fast_bad,
            fast_total=fast_total,
            slow_bad=slow_bad,
            slow_total=slow_total,
        )


class BurnRateRule:
    """Multi-window burn-rate tracker for one bad/total stream.

    Parameters
    ----------
    name:
        Rule identity in alerts (e.g. ``burn.t0`` for tenant t0).
    slo_target:
        The availability/latency objective in (0, 1); the error budget
        is ``1 - slo_target``.
    pairs:
        ``(pair_name, fast_windows, slow_windows, threshold)`` tuples.
    min_total:
        Events required in the slow window before burn is meaningful.
    """

    def __init__(
        self,
        name: str,
        slo_target: float = 0.999,
        pairs: tuple[tuple[str, int, int, float], ...] = DEFAULT_PAIRS,
        min_total: float = DEFAULT_MIN_TOTAL,
    ):
        if not 0.0 < slo_target < 1.0:
            raise ConfigurationError(
                f"slo_target must be in (0, 1), got {slo_target}"
            )
        self.name = name
        self.slo_target = slo_target
        self.budget = 1.0 - slo_target
        self.min_total = min_total
        self._pairs = [_PairState(*pair) for pair in pairs]

    def update(self, bad: float, total: float) -> list[BurnRateAlarm]:
        """Feed one closed window's bad/total; alarms for firing pairs."""
        alarms = []
        for pair in self._pairs:
            alarm = pair.update(bad, total, self.budget, self.min_total)
            if alarm is not None:
                alarms.append(alarm)
        return alarms

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "slo_target": self.slo_target,
            "min_total": self.min_total,
            "pairs": [
                {
                    "pair": p.name,
                    "fast_windows": p.fast,
                    "slow_windows": p.slow,
                    "threshold": p.threshold,
                }
                for p in self._pairs
            ],
        }


def _window_sum(recorder: WindowedRecorder, series: str, index: int) -> float:
    cell = recorder.cell(series, index)
    return cell.sum if cell is not None else 0.0


class TenantBurnSource:
    """Request-level bad/total from the ``serve.tenant.<t>.*`` series."""

    def __init__(self, tenant: str):
        self.tenant = tenant
        prefix = f"serve.tenant.{tenant}"
        self._violations = f"{prefix}.slo_violations"
        self._rejections = f"{prefix}.rejections"
        self._completions = f"{prefix}.completions"

    def bad_total(
        self, recorder: WindowedRecorder, index: int
    ) -> tuple[float, float]:
        rejected = _window_sum(recorder, self._rejections, index)
        bad = _window_sum(recorder, self._violations, index) + rejected
        total = _window_sum(recorder, self._completions, index) + rejected
        return bad, total


class TailBurnSource:
    """Window-level tail breach over ``sim.response_us`` for plain sims.

    A window with traffic counts 1 toward total; it counts 1 toward bad
    when its slowest response exceeded the SLO bound.
    """

    def __init__(self, slo_us: float):
        if not slo_us > 0:
            raise ConfigurationError(f"slo_us must be > 0, got {slo_us}")
        self.slo_us = slo_us

    def bad_total(
        self, recorder: WindowedRecorder, index: int
    ) -> tuple[float, float]:
        cell = recorder.cell("sim.response_us", index)
        if cell is None or cell.n == 0:
            return 0.0, 0.0
        return (1.0 if cell.max > self.slo_us else 0.0), 1.0
