"""Tests for the discrete-event multi-channel simulator."""

import numpy as np
import pytest

from repro.baselines.systems import ReadServiceBreakdown, SystemConfig, build_system
from repro.ecc.ldpc.latency import ReadLatencyModel
from repro.errors import ConfigurationError, SimulationError
from repro.ftl.config import SsdConfig
from repro.sim import (
    DesSimulationEngine,
    ReadRetryConfig,
    ReadRetryModel,
    RetryOutcome,
    SimulationEngine,
)
from repro.sim.des.events import Event, EventHeap, EventKind
from repro.sim.des.scheduler import ChannelScheduler
from repro.traces.schema import TraceRecord


def tiny_system(name="ldpc-in-ssd", shared_policy=None, **overrides):
    ssd = SsdConfig(
        n_blocks=64, pages_per_block=16, gc_free_block_threshold=2, **overrides
    )
    config = SystemConfig(
        ssd=ssd, footprint_pages=int(ssd.logical_pages * 0.4), buffer_pages=16
    )
    return build_system(name, config, level_adjust=shared_policy)


def mixed_trace(n=200, period_us=500.0):
    return [
        TraceRecord(i * period_us, (i * 7) % 80, 1 + i % 3, i % 4 == 0)
        for i in range(n)
    ]


class TestEventHeap:
    def test_pops_in_time_order(self):
        heap = EventHeap()
        for t in (5.0, 1.0, 3.0):
            heap.push(Event(time_us=t, kind=EventKind.ARRIVAL))
        times = [heap.pop().time_us for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_virtual_time_monotone(self):
        heap = EventHeap()
        heap.push(Event(time_us=10.0, kind=EventKind.ARRIVAL))
        heap.pop()
        with pytest.raises(SimulationError):
            heap.push(Event(time_us=5.0, kind=EventKind.ARRIVAL))

    def test_ties_broken_by_insertion_order(self):
        heap = EventHeap()
        heap.push(Event(time_us=1.0, kind=EventKind.ARRIVAL, request_index=0))
        heap.push(Event(time_us=1.0, kind=EventKind.ARRIVAL, request_index=1))
        assert heap.pop().request_index == 0
        assert heap.pop().request_index == 1

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventHeap().pop()


class TestScheduler:
    def test_backlog_drains_into_idle_gap(self):
        scheduler = ChannelScheduler(n_channels=1, gc_granule_us=100.0)
        scheduler.add_background(50.0)
        report = scheduler.admit(0, arrival_us=1000.0)
        # Plenty of idle time before the arrival: GC finishes, no stall.
        assert report.drained_us == 50.0
        assert report.stall_us == 0.0
        assert report.start_us == 1000.0

    def test_residual_backlog_stalls_one_granule(self):
        scheduler = ChannelScheduler(n_channels=1, gc_granule_us=100.0)
        scheduler.add_background(500.0)
        report = scheduler.admit(0, arrival_us=50.0)
        assert report.drained_us == 50.0
        assert report.stall_us == 100.0
        assert report.start_us == 150.0

    def test_background_split_across_channels(self):
        scheduler = ChannelScheduler(n_channels=4, gc_granule_us=100.0)
        scheduler.add_background(400.0)
        assert all(state.backlog_us == 100.0 for state in scheduler.channels)


class TestConservation:
    def test_every_request_serviced_exactly_once(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        trace = mixed_trace(150)
        engine = DesSimulationEngine(
            system, warmup_fraction=0.0, n_channels=4, retry_model=None
        )
        result = engine.run(trace, "t")
        assert result.n_requests == len(trace)

    def test_response_at_least_service(self, shared_policy):
        """Sparse flash reads (no queueing, no buffer hits, no retries)
        must each take at least one full base read."""
        system = tiny_system(shared_policy=shared_policy)
        trace = [TraceRecord(i * 1e6, i, 1, False) for i in range(20)]
        engine = DesSimulationEngine(
            system, warmup_fraction=0.0, n_channels=4, retry_model=None
        )
        result = engine.run(trace, "t")
        base = ReadLatencyModel().base_read_us
        assert all(r >= base for r in result.read_responses_us)
        assert all(r >= 0 for r in result.write_responses_us)

    def test_makespan_and_utilization_bounds(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        engine = DesSimulationEngine(system, warmup_fraction=0.0, n_channels=4)
        result = engine.run(mixed_trace(200), "t")
        assert result.makespan_us > 0
        utilization = result.channel_utilization()
        assert len(utilization) == 4
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in utilization)

    def test_utilization_gauges_match_result(self, shared_policy):
        from repro.obs import MetricsRegistry

        system = tiny_system(shared_policy=shared_policy)
        registry = MetricsRegistry()
        engine = DesSimulationEngine(
            system, warmup_fraction=0.0, n_channels=4, registry=registry
        )
        result = engine.run(mixed_trace(200), "t")
        snapshot = registry.snapshot()
        for channel, utilization in enumerate(result.channel_utilization()):
            assert snapshot[f"sim.channel.{channel}.busy_us"] == pytest.approx(
                result.channel_busy_us[channel]
            )
            assert snapshot[
                f"sim.channel.{channel}.utilization"
            ] == pytest.approx(utilization, rel=1e-12)


class TestLegacyEquivalence:
    @pytest.mark.parametrize("name", ["baseline", "ldpc-in-ssd", "flexlevel"])
    def test_single_channel_no_retry_matches_legacy(self, shared_policy, name):
        trace = mixed_trace(300)
        legacy = SimulationEngine(
            tiny_system(name, shared_policy=shared_policy), warmup_fraction=0.1
        ).run(trace, "t")
        des = DesSimulationEngine(
            tiny_system(name, shared_policy=shared_policy),
            warmup_fraction=0.1,
            n_channels=1,
            retry_model=None,
        ).run(trace, "t")
        assert des.mean_response_us() == pytest.approx(
            legacy.mean_response_us(), rel=1e-9
        )
        assert des.n_requests == legacy.n_requests
        assert sorted(des.read_responses_us) == pytest.approx(
            sorted(legacy.read_responses_us), rel=1e-9
        )

    def test_multi_channel_speeds_up_parallel_requests(self, shared_policy):
        def mean(channels):
            system = tiny_system(shared_policy=shared_policy)
            trace = [TraceRecord(i * 200.0, (i * 11) % 80, 4, False) for i in range(100)]
            engine = DesSimulationEngine(
                system, warmup_fraction=0.0, n_channels=channels, retry_model=None
            )
            return engine.run(trace, "t").mean_response_us()

        assert mean(4) < mean(1)


class TestReadRetry:
    def synthetic_breakdown(self, ber, provisioned=0, required=0, n_retries=6):
        return ReadServiceBreakdown(
            lpn=0,
            buffer_hit=False,
            mode=None,
            required_levels=required,
            provisioned_levels=provisioned,
            first_round_us=100.0,
            retry_rounds_us=tuple(10.0 for _ in range(n_retries)),
            post_read_us=0.0,
            raw_ber=ber,
        )

    def test_seeded_first_retry_rate(self):
        config = ReadRetryConfig(ber_scale=25.0, failure_cap=0.5, seed=7)
        model = ReadRetryModel(config)
        ber = 8e-3  # p(first retry) = 25 * 8e-3 = 0.2
        samples = [model.sample(self.synthetic_breakdown(ber))[0] for _ in range(4000)]
        first_retry_rate = np.mean([s >= 1 for s in samples])
        assert first_retry_rate == pytest.approx(0.2, abs=0.025)

    def test_margin_reduces_failures(self):
        model = ReadRetryModel(ReadRetryConfig(seed=3))
        assert model.failure_probability(1e-2, 0) == pytest.approx(0.25)
        assert model.failure_probability(1e-2, 2) == pytest.approx(0.0625)
        assert model.failure_probability(1.0, 0) == 0.5  # capped

    def test_buffer_hits_never_retry(self):
        model = ReadRetryModel()
        breakdown = ReadServiceBreakdown(
            lpn=0, buffer_hit=True, mode=None, required_levels=0,
            provisioned_levels=0, first_round_us=2.0, retry_rounds_us=(),
            post_read_us=0.0, raw_ber=0.0,
        )
        assert model.sample(breakdown) == (0, 0.0)

    def test_engine_retry_runs_are_seeded(self, shared_policy):
        def histogram():
            system = tiny_system(shared_policy=shared_policy)
            engine = DesSimulationEngine(
                system,
                warmup_fraction=0.0,
                n_channels=2,
                retry_model=ReadRetryModel(ReadRetryConfig(seed=11)),
            )
            return engine.run(mixed_trace(300), "t").retry_rounds_histogram

        first, second = histogram(), histogram()
        assert first == second
        assert sum(first.values()) > 0

    def test_retries_stretch_the_tail(self, shared_policy):
        """Retries on a worn device must raise p99 more than they can
        lower it: compare identical runs with retries on and off."""
        def p99(retry_model):
            system = tiny_system(
                "baseline", shared_policy=shared_policy, initial_pe_cycles=6000
            )
            engine = DesSimulationEngine(
                system, warmup_fraction=0.0, n_channels=2, retry_model=retry_model
            )
            return engine.run(mixed_trace(400), "t").percentile_response_us(99)

        assert p99(ReadRetryModel(ReadRetryConfig(seed=5))) >= p99(None)


class TestRetryOutcome:
    def synthetic_breakdown(self, ber, provisioned=0, required=0, n_retries=6):
        return ReadServiceBreakdown(
            lpn=0,
            buffer_hit=False,
            mode=None,
            required_levels=required,
            provisioned_levels=provisioned,
            first_round_us=100.0,
            retry_rounds_us=tuple(10.0 for _ in range(n_retries)),
            post_read_us=0.0,
            raw_ber=ber,
        )

    def test_buffer_hit_outcome(self):
        model = ReadRetryModel()
        breakdown = ReadServiceBreakdown(
            lpn=0, buffer_hit=True, mode=None, required_levels=0,
            provisioned_levels=0, first_round_us=2.0, retry_rounds_us=(),
            post_read_us=0.0, raw_ber=0.0,
        )
        outcome = model.sample_outcome(breakdown)
        assert outcome == RetryOutcome(0, 0.0, False, 0.0)

    def test_empty_ladder_is_exhausted_without_a_draw(self):
        """A read already provisioned at the ladder top has no retry
        rounds: it is terminally exhausted with its first-round failure
        probability, and consumes no RNG draw (draw-sequence parity
        with the legacy sampler)."""
        model = ReadRetryModel(ReadRetryConfig(seed=3))
        reference = ReadRetryModel(ReadRetryConfig(seed=3))
        outcome = model.sample_outcome(self.synthetic_breakdown(1e-2, n_retries=0))
        assert outcome.exhausted
        assert outcome.extra_rounds == 0
        assert outcome.final_failure_probability == pytest.approx(0.25)
        # Next draws still line up with an untouched equally-seeded model.
        probe = self.synthetic_breakdown(1e-2)
        assert model.sample_outcome(probe) == reference.sample_outcome(probe)

    def test_full_ladder_failure_reports_residual_probability(self):
        """A read that fails every escalation ends exhausted with the
        capped base probability after every margin halving; a sampled
        population at max BER contains such reads."""
        model = ReadRetryModel(ReadRetryConfig(seed=13))
        exhausted = [
            outcome
            for outcome in (
                model.sample_outcome(self.synthetic_breakdown(1.0, n_retries=2))
                for _ in range(400)
            )
            if outcome.exhausted
        ]
        # P(exhaust) = 0.5 * 0.25 = 12.5 % per read: plenty in 400.
        assert exhausted
        for outcome in exhausted:
            assert outcome.extra_rounds == 2
            assert outcome.extra_us == pytest.approx(20.0)
            # 0.5 capped base, halved once per burnt round.
            assert outcome.final_failure_probability == pytest.approx(0.125)

    def test_successful_read_not_exhausted(self):
        model = ReadRetryModel()
        outcome = model.sample_outcome(self.synthetic_breakdown(0.0))
        assert outcome == RetryOutcome(0, 0.0, False, 0.0)

    def test_sample_matches_sample_outcome(self):
        """The legacy scalar view draws the same sequence."""
        a = ReadRetryModel(ReadRetryConfig(seed=7))
        b = ReadRetryModel(ReadRetryConfig(seed=7))
        for _ in range(200):
            breakdown = self.synthetic_breakdown(1e-2)
            outcome = a.sample_outcome(breakdown)
            assert b.sample(breakdown) == (outcome.extra_rounds, outcome.extra_us)

    def test_uncorrectable_reads_counted_with_faults(self, shared_policy):
        """A faulty high-wear system records uncorrectable reads; the
        identically-seeded fault-free run records none and carries no
        fault keys in its stats."""
        from repro.faults import FaultConfig, FaultInjector

        def run(injector):
            ssd = SsdConfig(
                n_blocks=64, pages_per_block=16, gc_free_block_threshold=2,
                initial_pe_cycles=16000,
            )
            config = SystemConfig(
                ssd=ssd, footprint_pages=int(ssd.logical_pages * 0.4),
                buffer_pages=16,
            )
            system = build_system("baseline", config, fault_injector=injector)
            engine = DesSimulationEngine(
                system,
                warmup_fraction=0.0,
                n_channels=2,
                retry_model=ReadRetryModel(ReadRetryConfig(seed=11)),
            )
            return engine.run(mixed_trace(400), "t")

        faulty = run(
            FaultInjector(
                FaultConfig(enabled=True, initial_bad_block_rate=0.0).scaled(100)
            )
        )
        clean = run(None)
        assert faulty.uncorrectable_reads > 0
        assert faulty.stats["uncorrectable_reads"] == faulty.uncorrectable_reads
        assert sum(faulty.uncorrectable_by_channel.values()) == (
            faulty.uncorrectable_reads
        )
        assert clean.uncorrectable_reads == 0
        assert "uncorrectable_reads" not in clean.stats


class TestValidationAndWarmup:
    def test_bad_params_rejected(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        with pytest.raises(ConfigurationError):
            DesSimulationEngine(system, warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            DesSimulationEngine(system, n_channels=0)
        with pytest.raises(ConfigurationError):
            DesSimulationEngine(system, gc_granule_us=-1.0)

    def test_empty_trace_rejected(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        with pytest.raises(ConfigurationError):
            DesSimulationEngine(system).run([], "t")

    def test_warmup_swallowing_all_requests_rejected(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        engine = DesSimulationEngine(system, warmup_fraction=0.0)
        engine.warmup_fraction = 1.0  # float edge: rounds to everything
        with pytest.raises(ConfigurationError, match="warmup"):
            engine.run(mixed_trace(10), "t")

    def test_ber_cache_hit_rate_reported(self, shared_policy):
        system = tiny_system(shared_policy=shared_policy)
        engine = DesSimulationEngine(system, warmup_fraction=0.0, n_channels=2)
        result = engine.run(mixed_trace(200), "t")
        assert "ber_cache_hit_rate" in result.stats
        assert 0.0 <= result.stats["ber_cache_hit_rate"] <= 1.0
        hits = result.stats["ber_cache_hits"]
        misses = result.stats["ber_cache_misses"]
        assert hits + misses > 0
