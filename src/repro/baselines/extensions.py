"""Extension systems beyond the paper's four.

Three design alternatives a storage architect would weigh against
FlexLevel, built on the same substrate so the comparison is apples to
apples:

* **ldpc-in-ssd-progressive** — LDPC-in-SSD *without* per-region level
  tracking: every read starts at zero extra levels and retries upward
  until decoding succeeds (the progressive read-retry most shipping
  controllers implement).  Upper-bounds what the paper's idealized
  LDPC-in-SSD tracking is worth.
* **slc-cache** — the classic alternative to LevelAdjust: hot data goes
  into SLC-mode pages (two Vth levels, enormous margins, zero extra
  sensing) at a 50 % density cost instead of ReduceCode's 25 %.  Run
  with the same *capacity-loss budget* as FlexLevel, it can hold only
  half as many hot pages.
* **refresh** — retention-aware refresh (after Liu et al., FAST'12 and
  Pan et al., HPCA'12): pages whose reads demand extra sensing levels
  are rewritten in place, resetting their retention age.  No capacity
  cost at all — the price is paid in program/erase wear instead.
"""

from __future__ import annotations

from repro.baselines.systems import (
    FlexLevelSystem,
    LdpcInSsdSystem,
    StorageSystem,
    SystemConfig,
)
from repro.core.level_adjust import CellMode
from repro.errors import ConfigurationError


class LdpcInSsdProgressiveSystem(StorageSystem):
    """Progressive read-retry: no BER tracking, pay for the discovery.

    Each read attempt adds one sensing level; the failed attempts'
    transfers and decodes are wasted work on the critical path.
    """

    name = "ldpc-in-ssd-progressive"

    def write_mode(self, lpn: int) -> CellMode:
        return CellMode.NORMAL

    def _read_latency(self, required_levels: int, mode: CellMode) -> float:
        return self.latency.progressive_latency_us(required_levels)


class SlcCacheSystem(FlexLevelSystem):
    """AccessEval steering hot data into SLC pages instead of reduced ones.

    Inherits the HLO identification and pool machinery from FlexLevel;
    only the target mode and the pool sizing differ.  To hold the same
    capacity-loss budget as FlexLevel (pool x 25 % loss), the SLC pool
    is half the size (pool x 50 % loss).
    """

    name = "slc-cache"

    #: SLC density loss relative to ReduceCode's (0.50 vs 0.25).
    _LOSS_RATIO = 2

    def __init__(self, config: SystemConfig, **kwargs):
        super().__init__(config, **kwargs)
        self.access_eval.pool.max_pages //= self._LOSS_RATIO

    def write_mode(self, lpn: int) -> CellMode:
        return CellMode.SLC if lpn in self.access_eval.pool else CellMode.NORMAL

    def _after_read(
        self, lpn: int, mode: CellMode, required_levels: int, now_us: float
    ) -> float:
        decision = self.access_eval.on_read(lpn, required_levels)
        if decision.promote:
            foreground, gc = self.ssd.migrate(lpn, CellMode.SLC, now_us)
            self._pending_background_us += foreground + gc
            self.ssd.stats.promotions += 1
        if decision.demote_lpn is not None:
            foreground, gc = self.ssd.migrate(decision.demote_lpn, CellMode.NORMAL, now_us)
            self._pending_background_us += foreground + gc
            self.ssd.stats.demotions += 1
        return 0.0


class RefreshSystem(LdpcInSsdSystem):
    """Retention-aware refresh: rewrite pages that got expensive to read.

    When a read needs at least ``refresh_threshold`` extra sensing
    levels, the controller re-programs the page (in normal mode) off the
    critical path, resetting its retention age; the next read is fast.
    Capacity is untouched; endurance pays.
    """

    name = "refresh"

    def __init__(
        self, config: SystemConfig, refresh_threshold: int = 1, **kwargs
    ):
        if refresh_threshold < 1:
            raise ConfigurationError("refresh threshold must be >= 1")
        super().__init__(config, **kwargs)
        self.refresh_threshold = refresh_threshold
        self.refreshes = 0

    def _after_read(
        self, lpn: int, mode: CellMode, required_levels: int, now_us: float
    ) -> float:
        if required_levels >= self.refresh_threshold:
            # Rewriting the same data in place: one program (+ GC),
            # scheduled behind the response like other maintenance work.
            program, gc = self.ssd.host_write(lpn, CellMode.NORMAL, now_us)
            # host_write counts it as a host write; reclassify.
            self.ssd.stats.host_write_pages -= 1
            self.ssd.stats.flash_program_pages -= 1
            self.ssd.stats.migration_program_pages += 1
            self._pending_background_us += program + gc
            self.refreshes += 1
        return 0.0


EXTENSION_SYSTEMS = {
    cls.name: cls
    for cls in (LdpcInSsdProgressiveSystem, SlcCacheSystem, RefreshSystem)
}


def build_extension_system(name: str, config: SystemConfig, **kwargs) -> StorageSystem:
    """Instantiate an extension system by name."""
    if name not in EXTENSION_SYSTEMS:
        raise ConfigurationError(
            f"unknown extension system {name!r}; choose from {sorted(EXTENSION_SYSTEMS)}"
        )
    return EXTENSION_SYSTEMS[name](config, **kwargs)
