"""Benchmark ledger: structured BENCH artifacts and regression gating.

The 20-odd scripts under ``benchmarks/`` print paper-style text tables;
this module gives each run a machine-readable twin so the repo's perf
trajectory is comparable across PRs:

* :class:`BenchResult` — one bench execution: name, quick/full mode,
  seed, curated scalar metrics, per-metric tolerance/direction hints
  and the embedded provenance :class:`~repro.obs.manifest.RunManifest`.
  Serialized as ``BENCH_<name>.json`` at the repo root.
* :class:`BenchLedger` — an append-only JSONL history
  (``benchmarks/results/ledger.jsonl``), one record per bench
  execution keyed by git SHA + config hash + seed + run id.
* :func:`compare_results` — a statistical comparator that derives
  per-metric noise bands from seed-replicate runs (falling back to
  declared tolerances) and classifies every metric as improved, flat
  or regressed with the right directionality (lower-is-better for
  latency/BER, higher-is-better for throughput/capacity).
* :class:`BenchCase` — the emit API bench scripts use (via the
  ``bench_case`` fixture in ``benchmarks/conftest.py``) to publish
  their headline numbers.

Quick/full mode and the bench seed are routed through one pair of
environment variables (:data:`QUICK_ENV`, :data:`SEED_ENV`) set by the
``repro bench run`` harness; results from different modes are never
comparable (:class:`BenchModeMismatch`).
"""

from __future__ import annotations

import json
import math
import os
import re
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.manifest import ManifestBuilder, RunManifest
from repro.obs.profile import peak_py_alloc_kb, wall_snapshot

BENCH_SCHEMA_VERSION = 1

#: Environment variable that switches every bench into quick mode.
QUICK_ENV = "REPRO_BENCH_QUICK"
#: Environment variable that overrides the benches' base RNG seed.
SEED_ENV = "REPRO_BENCH_SEED"
#: Environment variable carrying the harness-assigned run id.
RUN_ID_ENV = "REPRO_BENCH_RUN_ID"
#: Environment variable relocating BENCH_*.json / ledger output.
ROOT_ENV = "REPRO_BENCH_ROOT"
#: Environment variable enabling tracemalloc during bench runs, so
#: every case's ``wall`` section carries ``peak_py_alloc_kb``.  Off by
#: default: tracing slows the measured code 2-4x.
ALLOC_ENV = "REPRO_BENCH_ALLOC"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_]*$")

MODES = ("quick", "full")

CLASS_IMPROVED = "improved"
CLASS_FLAT = "flat"
CLASS_REGRESSED = "regressed"
CLASS_MISSING_BASELINE = "missing_baseline"
CLASS_MISSING_CANDIDATE = "missing_candidate"

#: Classifications that fail a regression gate: a metric got worse, or
#: it silently disappeared from the candidate run.
FAILING_CLASSES = (CLASS_REGRESSED, CLASS_MISSING_CANDIDATE)


class BenchSchemaError(ValueError):
    """A BENCH record does not satisfy the schema."""


class BenchModeMismatch(ValueError):
    """Quick-mode and full-mode runs were asked to be compared."""


def quick_mode(env: Mapping[str, str] | None = None) -> bool:
    """True when :data:`QUICK_ENV` requests the CI smoke scale."""
    env = os.environ if env is None else env
    return env.get(QUICK_ENV, "") not in ("", "0")


def bench_mode(env: Mapping[str, str] | None = None) -> str:
    """The current bench mode string: ``"quick"`` or ``"full"``."""
    return "quick" if quick_mode(env) else "full"


def alloc_mode(env: Mapping[str, str] | None = None) -> bool:
    """True when :data:`ALLOC_ENV` asks benches to trace allocations."""
    env = os.environ if env is None else env
    return env.get(ALLOC_ENV, "") not in ("", "0")


def bench_seed(default: int = 1, env: Mapping[str, str] | None = None) -> int:
    """The benches' base RNG seed (:data:`SEED_ENV` override)."""
    env = os.environ if env is None else env
    raw = env.get(SEED_ENV, "")
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise BenchSchemaError(f"{SEED_ENV}={raw!r} is not an integer") from None


def bench_name_for(module_name: str, test_name: str) -> str:
    """Canonical bench-case name for one test in one bench module.

    Single-test modules collapse to the module stem (``bench_uber.py``'s
    ``test_uber_requirements`` → ``uber_requirements``); tests that do
    not extend the module stem are namespaced under it so every case a
    script emits shares the script's name as a prefix.
    """
    mod = module_name.split(".")[-1]
    if mod.startswith("bench_"):
        mod = mod[len("bench_"):]
    test = test_name
    for prefix in ("test_", "bench_"):
        if test.startswith(prefix):
            test = test[len(prefix):]
    if test == mod or test.startswith(mod):
        return test
    return f"{mod}__{test}"


def default_bench_root(env: Mapping[str, str] | None = None) -> Path:
    """Where ``BENCH_*.json`` files land (repo root unless overridden).

    :data:`ROOT_ENV` wins; otherwise the first ancestor of the working
    directory containing a ``benchmarks/`` directory, falling back to
    the working directory itself.
    """
    env = os.environ if env is None else env
    override = env.get(ROOT_ENV, "")
    if override:
        return Path(override)
    cwd = Path.cwd()
    for candidate in (cwd, *cwd.parents):
        if (candidate / "benchmarks").is_dir():
            return candidate
    return cwd


# ---------------------------------------------------------------------------
# Metric direction and tolerance hints
# ---------------------------------------------------------------------------

#: (substring, direction) pairs; for a metric name the *rightmost*
#: matching substring decides, so ``capacity_loss`` is lower-is-better
#: (``loss`` beats ``capacity``) while bare ``capacity`` is higher.
_DIRECTION_TOKENS: tuple[tuple[str, str], ...] = (
    ("latency", "lower"),
    ("response", "lower"),
    ("_us", "lower"),
    ("time", "lower"),
    ("wait", "lower"),
    ("stall", "lower"),
    ("ber", "lower"),
    ("fer", "lower"),
    ("uber", "lower"),
    ("failure", "lower"),
    ("loss", "lower"),
    ("erase", "lower"),
    ("amplification", "lower"),
    ("levels", "lower"),
    ("increase", "lower"),
    ("retries", "lower"),
    ("rss", "lower"),
    ("programs", "lower"),
    ("promotions", "lower"),
    ("migrations", "lower"),
    ("spread", "lower"),
    ("delta", "lower"),
    ("throughput", "higher"),
    ("bandwidth", "higher"),
    ("iops", "higher"),
    ("capacity", "higher"),
    ("hits", "higher"),
    ("hit_rate", "higher"),
    ("success", "higher"),
    ("gain", "higher"),
    ("reduction", "higher"),
    ("lifetime", "higher"),
    ("endurance", "higher"),
    ("matches", "higher"),
)


def infer_direction(metric_name: str) -> str:
    """``"lower"`` or ``"higher"`` is better, inferred from the name.

    Unknown names default to lower-is-better: almost every metric the
    benches emit is a cost (latency, BER, erases, capacity loss).
    """
    best_direction, best_pos = "lower", -1
    for token, direction in _DIRECTION_TOKENS:
        pos = metric_name.rfind(token)
        if pos > best_pos:
            best_direction, best_pos = direction, pos
    return best_direction


@dataclass(frozen=True)
class MetricSpec:
    """Per-metric comparison hints a bench may declare at emit time.

    ``direction`` is ``"lower"``/``"higher"`` (empty = infer from the
    name); ``tolerance`` is the relative half-width of the flat band
    (None = comparator default, or a replicate-derived noise band when
    replicates are available and wider).
    """

    direction: str = ""
    tolerance: float | None = None

    def __post_init__(self) -> None:
        if self.direction not in ("", "lower", "higher"):
            raise BenchSchemaError(
                f"direction must be 'lower' or 'higher', got {self.direction!r}"
            )
        if self.tolerance is not None and not self.tolerance > 0:
            raise BenchSchemaError(
                f"tolerance must be positive, got {self.tolerance!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.direction:
            out["direction"] = self.direction
        if self.tolerance is not None:
            out["tolerance"] = self.tolerance
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "MetricSpec":
        return MetricSpec(
            direction=str(data.get("direction", "")),
            tolerance=data.get("tolerance"),
        )


def _coerce_specs(
    specs: Mapping[str, MetricSpec | Mapping[str, Any]] | None,
) -> dict[str, MetricSpec]:
    out: dict[str, MetricSpec] = {}
    for name, spec in (specs or {}).items():
        out[name] = spec if isinstance(spec, MetricSpec) else MetricSpec.from_dict(spec)
    return out


# ---------------------------------------------------------------------------
# BenchResult schema
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchResult:
    """One bench execution's machine-readable record.

    ``metrics`` holds the *curated* headline scalars the regression
    gate watches; the full instrument snapshot (and wall time / RSS,
    which are environment noise, not model outputs) lives in the
    embedded ``manifest`` and is never gated.  ``wall`` is the case's
    wall-clock sidecar — throughput (``wall_events_per_s``,
    ``wall_requests_per_s``, diffed from the engines' process-global
    ledger around the case) and ``peak_py_alloc_kb`` when tracing —
    also never compared by :func:`compare_results`, only trended.
    """

    name: str
    mode: str = "full"
    seed: int | None = None
    run_id: str = ""
    metrics: dict[str, float] = field(default_factory=dict)
    specs: dict[str, MetricSpec] = field(default_factory=dict)
    wall: dict[str, float | None] = field(default_factory=dict)
    manifest: RunManifest | None = None
    schema_version: int = BENCH_SCHEMA_VERSION

    @property
    def git_sha(self) -> str:
        return self.manifest.git_sha if self.manifest else "unknown"

    @property
    def config_hash(self) -> str:
        return self.manifest.config_hash if self.manifest else ""

    @property
    def started_utc(self) -> str:
        return self.manifest.started_utc if self.manifest else ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "bench": self.name,
            "mode": self.mode,
            "seed": self.seed,
            "run_id": self.run_id,
            "git_sha": self.git_sha,
            "config_hash": self.config_hash,
            "started_utc": self.started_utc,
            "metrics": dict(self.metrics),
            "specs": {k: v.to_dict() for k, v in sorted(self.specs.items())},
            "wall": dict(self.wall),
            "manifest": self.manifest.to_dict() if self.manifest else None,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "BenchResult":
        errors = validate_bench_dict(data)
        if errors:
            raise BenchSchemaError("; ".join(errors))
        manifest = None
        if data.get("manifest") is not None:
            manifest = RunManifest(**data["manifest"])
        return BenchResult(
            name=data["bench"],
            mode=data["mode"],
            seed=data.get("seed"),
            run_id=str(data.get("run_id", "")),
            metrics={k: float(v) for k, v in data["metrics"].items()},
            specs=_coerce_specs(data.get("specs")),
            wall={
                k: (None if v is None else float(v))
                for k, v in (data.get("wall") or {}).items()
            },
            manifest=manifest,
            schema_version=int(data["schema_version"]),
        )

    def write(self, root: Path | None = None) -> Path:
        """Write ``BENCH_<name>.json`` under ``root``; returns the path."""
        root = default_bench_root() if root is None else Path(root)
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"BENCH_{self.name}.json"
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @staticmethod
    def read(path: Path | str) -> "BenchResult":
        with open(path) as handle:
            return BenchResult.from_dict(json.load(handle))


def validate_bench_dict(data: Mapping[str, Any]) -> list[str]:
    """Schema errors for a would-be BENCH record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(data, Mapping):
        return ["record is not a JSON object"]
    version = data.get("schema_version")
    if not isinstance(version, int) or version < 1:
        errors.append(f"schema_version must be a positive int, got {version!r}")
    name = data.get("bench")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        errors.append(f"bench must match {_NAME_RE.pattern}, got {name!r}")
    if data.get("mode") not in MODES:
        errors.append(f"mode must be one of {MODES}, got {data.get('mode')!r}")
    seed = data.get("seed")
    if seed is not None and not isinstance(seed, int):
        errors.append(f"seed must be an int or null, got {seed!r}")
    metrics = data.get("metrics")
    if not isinstance(metrics, Mapping):
        errors.append(f"metrics must be an object, got {type(metrics).__name__}")
    else:
        if not metrics:
            errors.append("metrics must not be empty")
        for key, value in metrics.items():
            if not isinstance(key, str):
                errors.append(f"metric name {key!r} is not a string")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"metric {key!r} value {value!r} is not a number")
            elif not math.isfinite(value):
                errors.append(f"metric {key!r} is not finite ({value!r})")
    specs = data.get("specs", {})
    if not isinstance(specs, Mapping):
        errors.append("specs must be an object")
    else:
        for key, spec in specs.items():
            try:
                MetricSpec.from_dict(spec)
            except (BenchSchemaError, AttributeError, TypeError) as exc:
                errors.append(f"spec for {key!r} invalid: {exc}")
    wall = data.get("wall", {})
    if not isinstance(wall, Mapping):
        errors.append("wall must be an object")
    else:
        # Lenient by design: wall values are machine-dependent data the
        # comparator never reads, so null (unknown) is fine — only the
        # shape (name -> finite-number-or-null) is pinned.
        for key, value in wall.items():
            if not isinstance(key, str):
                errors.append(f"wall key {key!r} is not a string")
            elif value is not None and (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not math.isfinite(value)
            ):
                errors.append(
                    f"wall {key!r} value {value!r} is not a finite number or null"
                )
    manifest = data.get("manifest")
    if manifest is not None and not isinstance(manifest, Mapping):
        errors.append("manifest must be an object or null")
    return errors


# ---------------------------------------------------------------------------
# Ledger
# ---------------------------------------------------------------------------


class BenchLedger:
    """Append-only JSONL history of bench executions.

    One line per :class:`BenchResult`; records are grouped into *runs*
    by their ``run_id`` (the harness assigns one per ``repro bench
    run``; a plain ``pytest benchmarks/`` session shares one local id
    via the ``bench_run_id`` fixture).
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)

    def append(self, result: BenchResult) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")

    def records(self) -> list[dict[str, Any]]:
        """All well-formed records, oldest first (malformed lines skipped)."""
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and not validate_bench_dict(record):
                    out.append(record)
        return out

    def runs(self, mode: str | None = None) -> list[tuple[str, list[dict[str, Any]]]]:
        """(run_id, records) groups in order of first appearance."""
        groups: dict[str, list[dict[str, Any]]] = {}
        order: list[str] = []
        for record in self.records():
            if mode is not None and record.get("mode") != mode:
                continue
            key = record.get("run_id") or (
                f"{record.get('git_sha', 'unknown')}@{record.get('started_utc', '')}"
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(record)
        return [(key, groups[key]) for key in order]

    def select(
        self, selector: str, mode: str | None = None
    ) -> dict[str, BenchResult]:
        """Resolve a run selector to ``{bench_name: BenchResult}``.

        Selectors: ``latest``, ``prev`` (second-newest), ``run:<id
        prefix>``, ``sha:<git sha prefix>``.  Within a run, the last
        record per bench wins.
        """
        runs = self.runs(mode=mode)
        if not runs:
            raise LookupError(
                f"ledger {self.path} has no runs"
                + (f" in mode {mode!r}" if mode else "")
            )
        chosen: list[dict[str, Any]] | None = None
        if selector == "latest":
            chosen = runs[-1][1]
        elif selector == "prev":
            if len(runs) < 2:
                raise LookupError(f"ledger {self.path} has no previous run")
            chosen = runs[-2][1]
        elif selector.startswith("run:"):
            prefix = selector[len("run:"):]
            for key, records in reversed(runs):
                if key.startswith(prefix):
                    chosen = records
                    break
        elif selector.startswith("sha:"):
            prefix = selector[len("sha:"):]
            for _, records in reversed(runs):
                if any(
                    str(r.get("git_sha", "")).startswith(prefix) for r in records
                ):
                    chosen = records
                    break
        else:
            raise LookupError(f"unknown ledger selector {selector!r}")
        if chosen is None:
            raise LookupError(f"no ledger run matches {selector!r}")
        out: dict[str, BenchResult] = {}
        for record in chosen:
            out[record["bench"]] = BenchResult.from_dict(record)
        return out

    def replicates(
        self, bench: str, mode: str, config_hash: str | None = None
    ) -> list[dict[str, float]]:
        """Metric dicts of all ledger records for one bench and mode.

        Used to derive per-metric noise bands from seed-replicate runs;
        ``config_hash`` restricts to records of one exact experiment
        configuration (recommended — different configs are different
        experiments, not noise).
        """
        out: list[dict[str, float]] = []
        for record in self.records():
            if record.get("bench") != bench or record.get("mode") != mode:
                continue
            if config_hash is not None and record.get("config_hash") != config_hash:
                continue
            out.append({k: float(v) for k, v in record["metrics"].items()})
        return out


# ---------------------------------------------------------------------------
# Comparator
# ---------------------------------------------------------------------------

#: Relative flat band used when neither a declared tolerance nor a
#: replicate-derived noise band is available.  Wide enough to absorb
#: float drift across numpy/python versions, tight enough to catch a
#: real perf or model change.
DEFAULT_TOLERANCE = 0.02

#: Replicate noise bands are ±this many standard deviations around the
#: replicate mean (relative).
NOISE_SIGMAS = 3.0


def noise_band(
    values: Sequence[float] | None,
    declared: float | None,
    default: float = DEFAULT_TOLERANCE,
) -> float:
    """Relative flat-band half-width for one metric.

    With ≥2 finite replicate values the band is
    ``NOISE_SIGMAS * std / |mean|``, floored at the declared tolerance
    (or the comparator default).  Zero-variance replicates therefore
    fall back to the declared tolerance, never to a zero band.
    """
    floor = default if declared is None else declared
    finite = [v for v in (values or ()) if math.isfinite(v)]
    if len(finite) >= 2:
        mean = sum(finite) / len(finite)
        var = sum((v - mean) ** 2 for v in finite) / (len(finite) - 1)
        if mean != 0.0:
            return max(floor, NOISE_SIGMAS * math.sqrt(var) / abs(mean))
    return floor


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-candidate verdict."""

    metric: str
    baseline: float | None
    candidate: float | None
    direction: str
    band: float
    rel_change: float
    classification: str

    @property
    def failing(self) -> bool:
        return self.classification in FAILING_CLASSES

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "direction": self.direction,
            "band": self.band,
            "rel_change": None if math.isnan(self.rel_change) else self.rel_change,
            "classification": self.classification,
        }


def _classify(
    baseline: float | None,
    candidate: float | None,
    direction: str,
    band: float,
) -> tuple[str, float]:
    if candidate is None or (candidate is not None and math.isnan(candidate)):
        # A metric that vanished (or went NaN) in the candidate is a
        # failure unless the baseline never had it either.
        if baseline is None or math.isnan(baseline):
            return CLASS_MISSING_BASELINE, math.nan
        return CLASS_MISSING_CANDIDATE, math.nan
    if baseline is None or math.isnan(baseline):
        return CLASS_MISSING_BASELINE, math.nan
    if baseline == 0.0:
        if candidate == 0.0:
            return CLASS_FLAT, 0.0
        rel = math.inf if candidate > 0 else -math.inf
    else:
        rel = (candidate - baseline) / abs(baseline)
    worse = rel if direction == "lower" else -rel
    if worse > band:
        return CLASS_REGRESSED, rel
    if worse < -band:
        return CLASS_IMPROVED, rel
    return CLASS_FLAT, rel


def compare_metrics(
    baseline: Mapping[str, float],
    candidate: Mapping[str, float],
    specs: Mapping[str, MetricSpec | Mapping[str, Any]] | None = None,
    replicates: Iterable[Mapping[str, float]] | None = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> list[MetricDelta]:
    """Per-metric deltas over the union of both metric sets.

    ``replicates`` is an iterable of metric dicts from seed-replicate
    runs of the *baseline* experiment; when present (and ≥2 values per
    metric) the flat band widens to the observed noise.
    """
    spec_map = _coerce_specs(specs)
    replicate_values: dict[str, list[float]] = {}
    for snapshot in replicates or ():
        for key, value in snapshot.items():
            replicate_values.setdefault(key, []).append(float(value))
    deltas: list[MetricDelta] = []
    for name in sorted(set(baseline) | set(candidate)):
        spec = spec_map.get(name, MetricSpec())
        direction = spec.direction or infer_direction(name)
        band = noise_band(
            replicate_values.get(name), spec.tolerance, default_tolerance
        )
        base = baseline.get(name)
        cand = candidate.get(name)
        classification, rel = _classify(
            None if base is None else float(base),
            None if cand is None else float(cand),
            direction,
            band,
        )
        deltas.append(
            MetricDelta(
                metric=name,
                baseline=None if base is None else float(base),
                candidate=None if cand is None else float(cand),
                direction=direction,
                band=band,
                rel_change=rel,
                classification=classification,
            )
        )
    return deltas


@dataclass(frozen=True)
class BenchComparison:
    """All metric verdicts for one bench pair."""

    bench: str
    mode: str
    deltas: tuple[MetricDelta, ...]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.failing]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.classification == CLASS_IMPROVED]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": self.bench,
            "mode": self.mode,
            "ok": self.ok,
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def summary_lines(self, verbose: bool = False) -> list[str]:
        """Human-readable verdict lines (regressions always shown)."""
        lines: list[str] = []
        marks = {
            CLASS_IMPROVED: "+",
            CLASS_FLAT: "=",
            CLASS_REGRESSED: "!",
            CLASS_MISSING_BASELINE: "?",
            CLASS_MISSING_CANDIDATE: "!",
        }
        for delta in self.deltas:
            if not verbose and delta.classification == CLASS_FLAT:
                continue
            rel = (
                f"{delta.rel_change:+.2%}"
                if math.isfinite(delta.rel_change)
                else "n/a"
            )
            lines.append(
                f"  {marks[delta.classification]} {self.bench}.{delta.metric}: "
                f"{delta.baseline} -> {delta.candidate} "
                f"({rel}, band ±{delta.band:.2%}, {delta.direction} is better)"
                f" [{delta.classification}]"
            )
        return lines


def compare_results(
    baseline: BenchResult,
    candidate: BenchResult,
    replicates: Iterable[Mapping[str, float]] | None = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> BenchComparison:
    """Compare two :class:`BenchResult` records of the same bench.

    Raises :class:`BenchModeMismatch` when one side is a quick-mode run
    and the other full — the scales differ, so any delta would be
    meaningless.
    """
    if baseline.mode != candidate.mode:
        raise BenchModeMismatch(
            f"cannot compare {baseline.name}: baseline is {baseline.mode!r} "
            f"but candidate is {candidate.mode!r}"
        )
    specs: dict[str, MetricSpec] = dict(baseline.specs)
    specs.update(candidate.specs)
    deltas = compare_metrics(
        baseline.metrics,
        candidate.metrics,
        specs=specs,
        replicates=replicates,
        default_tolerance=default_tolerance,
    )
    return BenchComparison(
        bench=candidate.name, mode=candidate.mode, deltas=tuple(deltas)
    )


# ---------------------------------------------------------------------------
# Emit API for bench scripts
# ---------------------------------------------------------------------------


class BenchCase:
    """One bench execution's emit handle.

    Created (by the ``bench_case`` fixture) before the measured run so
    the embedded manifest's wall time brackets it; the script calls
    :meth:`configure` with its experiment knobs and :meth:`emit` with
    its headline metrics.  The mode is injected into the manifest
    config, so quick and full runs hash to different ``config_hash``
    values on top of carrying an explicit ``mode`` field.
    """

    def __init__(
        self,
        name: str,
        *,
        root: Path | str | None = None,
        ledger_path: Path | str | None = None,
        mode: str | None = None,
        seed: int | None = None,
        run_id: str | None = None,
    ):
        if not _NAME_RE.match(name):
            raise BenchSchemaError(f"bench name {name!r} must be lower_snake")
        self.name = name
        self.root = default_bench_root() if root is None else Path(root)
        self.ledger_path = (
            self.root / "benchmarks" / "results" / "ledger.jsonl"
            if ledger_path is None
            else Path(ledger_path)
        )
        self.mode = bench_mode() if mode is None else mode
        if self.mode not in MODES:
            raise BenchSchemaError(f"mode must be one of {MODES}, got {self.mode!r}")
        self.seed = bench_seed() if seed is None else seed
        self.run_id = (
            os.environ.get(RUN_ID_ENV, "") if run_id is None else run_id
        )
        # Mode is part of the config hash (quick and full are different
        # experiments); the seed is deliberately NOT — the ledger keys
        # runs by (git SHA, config hash, seed), so seed-replicate runs
        # of one experiment share a config hash.
        self._builder = ManifestBuilder.begin(
            f"bench {name}", {"mode": self.mode}, seed=self.seed
        )
        # Wall-throughput sidecar: snapshot the engines' process-global
        # ledger now, diff it at emit time.  Costs two dict copies, and
        # needs no change in any bench script.
        self._wall0 = wall_snapshot()
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()

    @property
    def quick(self) -> bool:
        return self.mode == "quick"

    def configure(self, **config: Any) -> "BenchCase":
        """Record experiment knobs into the manifest config (chainable)."""
        self._builder.update_config(config)
        return self

    def emit(
        self,
        metrics: Mapping[str, float],
        specs: Mapping[str, MetricSpec | Mapping[str, Any]] | None = None,
        *,
        write_json: bool = True,
        append_ledger: bool = True,
        **extra: Any,
    ) -> BenchResult:
        """Publish the bench's headline metrics.

        Validates the record, writes ``BENCH_<name>.json`` at the bench
        root and appends one ledger line.  ``extra`` lands in the
        manifest's free-form section (artifact paths, table names, ...).
        """
        manifest = self._builder.finish(
            metrics={k: float(v) for k, v in metrics.items()}, **extra
        )
        result = BenchResult(
            name=self.name,
            mode=self.mode,
            seed=self.seed,
            run_id=self.run_id,
            metrics={k: float(v) for k, v in metrics.items()},
            specs=_coerce_specs(specs),
            wall=self._wall_delta(manifest),
            manifest=manifest,
        )
        errors = validate_bench_dict(result.to_dict())
        if errors:
            raise BenchSchemaError(
                f"bench {self.name} emitted an invalid record: " + "; ".join(errors)
            )
        if write_json:
            result.write(self.root)
        if append_ledger:
            BenchLedger(self.ledger_path).append(result)
        return result

    def _wall_delta(self, manifest: RunManifest) -> dict[str, float | None]:
        """The case's wall sidecar: ledger deltas since ``__init__``.

        Throughput is null when no engine loop ran during the case
        (analytic benches) — null, not zero, so the trend report can
        tell "no simulation" from "infinitely slow".
        """
        wall1 = wall_snapshot()
        loop_s = wall1["loop_s"] - self._wall0["loop_s"]
        events = wall1["events"] - self._wall0["events"]
        requests = wall1["requests"] - self._wall0["requests"]
        return {
            "wall_time_s": manifest.wall_time_s,
            "sim_loop_s": loop_s if loop_s > 0.0 else None,
            "wall_events_per_s": events / loop_s if loop_s > 0.0 else None,
            "wall_requests_per_s": requests / loop_s if loop_s > 0.0 else None,
            "peak_py_alloc_kb": peak_py_alloc_kb(),
        }
