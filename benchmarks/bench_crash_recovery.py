"""Crash → recover → resume cost: remount time vs checkpoint cadence.

One seeded sudden-power-off cuts a write-heavy run mid-flight; the
remount replays checkpoint + journal (cross-checked against the full
OOB scan — the crash invariant).  Sweeping the checkpoint interval
traces the paper-style trade-off: tighter checkpoints shorten the
journal and the remount, at the price of more metadata traffic
(checkpoints taken).  A rate-mode cycle run (several cuts, resume to
completion) rides along as the end-to-end robustness probe.

Quick mode shrinks the trace and interval set: wiring coverage, not
meaningful numbers.
"""

from conftest import BENCH_SEED, QUICK, write_table

from repro.baselines.systems import SystemConfig
from repro.faults.power import PowerConfig
from repro.ftl.config import SsdConfig
from repro.ftl.recovery import RecoveryConfig
from repro.sim.crash import run_with_crashes
from repro.traces.workloads import make_workload

N_REQUESTS = 2_000 if QUICK else 10_000
INTERVALS_US = (
    (10_000.0, 1e12) if QUICK else (10_000.0, 100_000.0, 1_000_000.0, 1e12)
)
WORKLOAD = "prj-1"  # the write-heaviest paper mix: real journal growth
SPO_RATE_PER_S = 2.0
ENGINE = "queue"


def make_setup():
    ssd_config = SsdConfig(n_blocks=256, pages_per_block=64)
    workload = make_workload(WORKLOAD, ssd_config.logical_pages)
    trace = workload.generate(N_REQUESTS, seed=BENCH_SEED)
    config = SystemConfig(
        ssd=ssd_config,
        footprint_pages=workload.footprint_pages,
        buffer_pages=128,
    )
    crash_us = trace[-1].timestamp_us * 0.5
    return config, trace, crash_us


def run_sweep():
    config, trace, crash_us = make_setup()
    fixed = {}
    for interval in INTERVALS_US:
        run = run_with_crashes(
            "flexlevel",
            config,
            trace,
            PowerConfig(enabled=True, at_us=crash_us),
            recovery=RecoveryConfig(checkpoint_interval_us=interval),
            engine=ENGINE,
        )
        fixed[interval] = run
    cycles = run_with_crashes(
        "flexlevel",
        config,
        trace,
        PowerConfig(
            enabled=True,
            rate_per_s=SPO_RATE_PER_S,
            seed=BENCH_SEED,
            max_crashes=4,
        ),
        recovery=RecoveryConfig(checkpoint_interval_us=INTERVALS_US[0]),
        engine=ENGINE,
    )
    return fixed, cycles


def test_crash_recovery(benchmark, results_dir, bench_case):
    bench_case.configure(
        engine=ENGINE,
        n_requests=N_REQUESTS,
        workload=WORKLOAD,
        checkpoint_intervals_us=list(INTERVALS_US),
        spo_rate_per_s=SPO_RATE_PER_S,
    )
    fixed, cycles = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [
        f"flexlevel, {ENGINE} engine, {WORKLOAD}, {N_REQUESTS} requests, "
        "one power cut at 50% of the trace span",
        "",
        f"{'interval us':>12s} {'ckpts':>6s} {'journal':>8s} "
        f"{'replayed':>9s} {'plp':>5s} {'recovery us':>12s}",
    ]
    metrics = {}
    for interval in INTERVALS_US:
        report = fixed[interval].reports[0]
        manager = fixed[interval].final_system.ssd.recovery
        lines.append(
            f"{interval:12.0f} {manager.checkpoints_taken:6d} "
            f"{report.journal_entries:8d} {report.journal_replayed:9d} "
            f"{report.plp_pages:5d} {report.recovery_time_us:12.1f}"
        )
        prefix = f"interval_{interval:g}"
        metrics[f"{prefix}.recovery_time_us"] = report.recovery_time_us
        metrics[f"{prefix}.journal_entries"] = float(report.journal_entries)
    lines += [
        "",
        f"rate-mode cycles: {cycles.crashes} cuts, "
        f"{sum(r.recovery_time_us for r in cycles.reports):.1f} us total "
        f"recovery, final leg "
        f"{'completed' if not cycles.final.crashed else 'crashed'}",
    ]
    metrics["cycles.crashes"] = float(cycles.crashes)
    metrics["cycles.total_recovery_us"] = sum(
        r.recovery_time_us for r in cycles.reports
    )
    write_table(results_dir, "crash_recovery", lines)
    bench_case.emit(
        metrics,
        specs={
            f"interval_{INTERVALS_US[0]:g}.recovery_time_us": {
                "direction": "lower"
            },
            f"interval_{INTERVALS_US[-1]:g}.recovery_time_us": {
                "direction": "lower"
            },
            "cycles.total_recovery_us": {"direction": "lower"},
        },
        table="crash_recovery",
    )

    # Every remount went through checkpoint + journal with the scan
    # cross-check on (verify_scan defaults True): the sweep completing
    # without SimulationError IS the crash invariant.
    for interval in INTERVALS_US:
        run = fixed[interval]
        assert run.crashes == 1
        assert not run.final.crashed
        report = run.reports[0]
        assert report.strategy == "journal"
        assert report.scan_matches_replay
    # The headline scaling claim: a longer checkpoint interval leaves a
    # longer journal to replay, so remount time grows with it — and the
    # checkpoint count shrinks.
    entries = [fixed[i].reports[0].journal_entries for i in INTERVALS_US]
    times = [fixed[i].reports[0].recovery_time_us for i in INTERVALS_US]
    ckpts = [
        fixed[i].final_system.ssd.recovery.checkpoints_taken
        for i in INTERVALS_US
    ]
    assert entries == sorted(entries)
    assert entries[0] < entries[-1]
    assert times[0] < times[-1]
    assert ckpts == sorted(ckpts, reverse=True)
    assert ckpts[0] > ckpts[-1]
    # The cycle run survived every cut and finished the trace.
    assert cycles.crashes >= 1
    assert not cycles.final.crashed
