"""LDPC substrate: construction, encoding, decoding, the NAND
soft-sensing channel and the read-latency model.

* :mod:`repro.ecc.ldpc.matrix` — GF(2) linear algebra helpers,
* :mod:`repro.ecc.ldpc.construction` — Gallager-style regular code
  construction,
* :mod:`repro.ecc.ldpc.code` — the code object (H, systematic G),
* :mod:`repro.ecc.ldpc.decoder` — hard bit-flip and normalized min-sum
  decoders,
* :mod:`repro.ecc.ldpc.channel` — Vth sensing -> quantized LLRs,
* :mod:`repro.ecc.ldpc.sensing` — the extra-sensing-level policy
  (paper Table 5),
* :mod:`repro.ecc.ldpc.latency` — read latency vs sensing levels.
"""

from repro.ecc.ldpc.code import LdpcCode
from repro.ecc.ldpc.construction import gallager_construction
from repro.ecc.ldpc.qc import qc_construction
from repro.ecc.ldpc.decoder import BitFlipDecoder, MinSumDecoder
from repro.ecc.ldpc.sum_product import SumProductDecoder
from repro.ecc.ldpc.channel import NandReadChannel
from repro.ecc.ldpc.sensing import SensingLevelPolicy, PAPER_SENSING_LADDER
from repro.ecc.ldpc.latency import ReadLatencyModel

__all__ = [
    "LdpcCode",
    "gallager_construction",
    "qc_construction",
    "BitFlipDecoder",
    "MinSumDecoder",
    "SumProductDecoder",
    "NandReadChannel",
    "SensingLevelPolicy",
    "PAPER_SENSING_LADDER",
    "ReadLatencyModel",
]
