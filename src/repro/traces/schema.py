"""Trace record format.

A block-level I/O trace is a time-ordered sequence of
:class:`TraceRecord` entries addressed in *pages* (the FTL's unit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceFormatError


@dataclass(frozen=True)
class TraceRecord:
    """One host I/O request.

    Attributes
    ----------
    timestamp_us:
        Arrival time in microseconds from trace start.
    lpn:
        First logical page number touched.
    n_pages:
        Request size in pages.
    is_write:
        True for writes, False for reads.
    """

    timestamp_us: float
    lpn: int
    n_pages: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.timestamp_us < 0:
            raise TraceFormatError(f"negative timestamp: {self.timestamp_us}")
        if self.lpn < 0:
            raise TraceFormatError(f"negative LPN: {self.lpn}")
        if self.n_pages <= 0:
            raise TraceFormatError(f"non-positive request size: {self.n_pages}")

    @property
    def last_lpn(self) -> int:
        """Last page touched by the request."""
        return self.lpn + self.n_pages - 1

    def pages(self) -> range:
        """All page numbers touched by the request."""
        return range(self.lpn, self.lpn + self.n_pages)
