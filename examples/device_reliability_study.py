"""Device-level reliability study (paper §6.1 workflow).

Reproduces the evaluation a device engineer would run: retention BER
across wear and age for the baseline and every NUNMA configuration,
interference BER, per-level error shares, the resulting soft-sensing
requirements, and the Eq. 1 UBER check — plus a Monte-Carlo
cross-validation of the analytic engine.

Run:  python examples/device_reliability_study.py
"""

import numpy as np

from repro.analysis import calibrated_analyzer
from repro.core import ReduceCodeCoding
from repro.core.nunma import basic_reduced_plan, margin_summary
from repro.device.uber import required_correctable_bits, uber, LDPC_CODEWORD_BITS, LDPC_INFO_BITS
from repro.device.voltages import normal_mlc_plan, reduced_plan
from repro.ecc.ldpc.sensing import SensingLevelPolicy


def main() -> None:
    coding = ReduceCodeCoding()
    analyzers = {"baseline": calibrated_analyzer(normal_mlc_plan())}
    for config in ("nunma1", "nunma2", "nunma3"):
        analyzers[config] = calibrated_analyzer(reduced_plan(config), coding=coding)

    print("== Retention BER (Table 4 axes) ==")
    times = ((24.0, "1 day"), (168.0, "1 week"), (720.0, "1 month"))
    header = "P/E    scheme    " + "  ".join(f"{label:>9s}" for _, label in times)
    print(header)
    for pe in (2000, 4000, 6000):
        for name, analyzer in analyzers.items():
            row = "  ".join(
                f"{analyzer.retention_ber(pe, hours).total:.3e}" for hours, _ in times
            )
            print(f"{pe:5d}  {name:9s} {row}")

    print("\n== Interference (C2C) BER ==")
    for name, analyzer in analyzers.items():
        print(f"{name:9s} {analyzer.c2c_ber().total:.3e}")

    print("\n== Why NUNMA: error shares per Vth level (uniform margins) ==")
    basic = calibrated_analyzer(basic_reduced_plan(), coding=coding)
    breakdown = basic.retention_ber(5000, 720.0)
    for level, share in sorted(breakdown.per_level.items()):
        print(f"level {level}: {share:.0%}")
    print("margins:", margin_summary(basic_reduced_plan()))

    print("\n== Sensing requirement and UBER closure ==")
    sensing = SensingLevelPolicy()
    worst = analyzers["baseline"].retention_ber(6000, 720.0).total
    print(f"baseline worst BER {worst:.2e} -> {sensing.required_levels(worst)} extra levels")
    k = required_correctable_bits(worst)
    print(
        f"rate-8/9 LDPC on 4 KB blocks needs k={k} correctable bits for "
        f"UBER {uber(k, LDPC_CODEWORD_BITS, LDPC_INFO_BITS, worst):.1e} (target 1e-15)"
    )

    print("\n== Monte-Carlo cross-check of the analytic engine ==")
    rng = np.random.default_rng(0)
    analyzer = analyzers["baseline"]
    analytic = analyzer.retention_ber(5000, 168.0).total
    sampled = analyzer.monte_carlo_ber(
        300_000, rng, pe_cycles=5000, t_hours=168.0, include_c2c=False
    )
    print(f"analytic {analytic:.3e} vs sampled {sampled:.3e} "
          f"(ratio {sampled / analytic:.2f})")

    print("\n== Read-disturb budgets (extension) ==")
    from repro.device.disturb import ReadDisturbModel, reads_to_failure

    disturb = ReadDisturbModel()
    for name in ("baseline", "nunma3"):
        budget = reads_to_failure(analyzers[name], disturb)
        print(f"{name:9s} tolerates ~{budget:,.0f} block reads before the "
              "extra-sensing trigger")


if __name__ == "__main__":
    main()
