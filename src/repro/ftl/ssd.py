"""The page-mapped SSD mechanism.

This is the FlashSim-equivalent substrate: logical-to-physical page
mapping, dual-mode (normal / reduced) block allocation, greedy garbage
collection over the over-provisioned pool, and wear/age bookkeeping.

Policy lives elsewhere: the storage systems in
:mod:`repro.baselines.systems` decide *which mode* a page is written in
and *how long* a read takes; the :class:`Ssd` provides mechanism and
charges flash work (program / erase / relocation) in microseconds.

Mode and capacity: a reduced-mode block stores only 75 % as many pages
(ReduceCode), so converting blocks to reduced mode shrinks the physical
page supply and — exactly as the paper argues — eats into the
over-provisioning, raising garbage-collection pressure.

Fault handling: with a :class:`~repro.faults.FaultInjector` attached,
factory-bad blocks are mapped out at init, failed programs are
rewritten elsewhere and the failing block retired against the spare
budget (likewise failed erases), read scrub refreshes pages whose BER
crossed the sensing trigger, and spare-pool exhaustion drops the drive
into read-only degraded mode instead of crashing — see docs/FAULTS.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.level_adjust import CellMode
from repro.errors import ConfigurationError, FtlError, OutOfSpaceError
from repro.faults import BadBlockTable, FaultInjector
from repro.ftl.config import SsdConfig
from repro.ftl.stats import SsdStats
from repro.ftl.wear_leveling import WearLeveler
from repro.units import us_to_hours

_FREE = -1
#: Block-mode sentinel for retired (factory- or grown-bad) blocks: they
#: hold no pages, are never allocated, picked as GC victims or rotated
#: by wear leveling, and contribute nothing to the page supply.
_BAD = -2

#: Block-mode encoding in the metadata arrays.
_MODE_TO_INT = {CellMode.NORMAL: 0, CellMode.REDUCED: 1, CellMode.SLC: 2}
_INT_TO_MODE = {value: mode for mode, value in _MODE_TO_INT.items()}


@dataclass(frozen=True)
class PageReadInfo:
    """Everything a read-latency policy needs to know about a page."""

    lpn: int
    mode: CellMode
    age_hours: float
    pe_cycles: float
    #: Physical block backing the page; -1 when unmapped (no medium).
    block: int = -1


class Ssd:
    """Page-mapped SSD with dual-mode blocks and greedy GC.

    Parameters
    ----------
    config:
        Geometry, timings and policy thresholds.
    prefill_pages:
        Number of logical pages considered written before the
        simulation starts (the workload's footprint).  They are laid
        out sequentially in normal-mode blocks.
    reduced_prefix_pages:
        The first this-many prefilled pages start in *reduced* mode
        (used by the LevelAdjust-only system, whose whole working set
        lives in reduced-state cells).
    initial_age_hours:
        Per-prefilled-page data age at simulation start.  Either an
        array of ``prefill_pages`` entries or a scalar applied to all;
        models the steady-state retention-age mix of a long-running
        drive.
    wear_leveler:
        Optional static wear-leveling policy evaluated after garbage
        collections (None disables wear leveling).
    fault_injector:
        Optional seeded :class:`~repro.faults.FaultInjector`.  Ignored
        unless its config is enabled; when active, manufacture-bad
        blocks are mapped out before prefill and program/erase faults
        are sampled during operation.
    recovery:
        Optional :class:`~repro.ftl.recovery.RecoveryManager` modelling
        the durable medium (per-page OOB metadata, mapping journal).
        Every mutation records itself, so a sudden power-off at any
        virtual-time point can be remounted — see docs/RECOVERY.md.
        None (the default) changes nothing.
    """

    def __init__(
        self,
        config: SsdConfig,
        prefill_pages: int = 0,
        reduced_prefix_pages: int = 0,
        initial_age_hours: np.ndarray | float = 0.0,
        wear_leveler: WearLeveler | None = None,
        fault_injector: FaultInjector | None = None,
        recovery=None,
    ):
        if not 0 <= prefill_pages <= config.logical_pages:
            raise ConfigurationError(
                f"prefill_pages {prefill_pages} outside [0, {config.logical_pages}]"
            )
        if not 0 <= reduced_prefix_pages <= prefill_pages:
            raise ConfigurationError(
                f"reduced_prefix_pages {reduced_prefix_pages} outside "
                f"[0, {prefill_pages}]"
            )
        self.config = config
        self.stats = SsdStats()
        # Windowed telemetry (repro.obs.timeseries): the engines attach
        # a recorder; host-path entry points tick the virtual clock and
        # internal events (GC runs, scrubs, retirements, degradation)
        # stamp themselves at the last ticked time.
        self.window_recorder = None
        self._window_now_us = 0.0
        # Media telemetry (repro.obs.channel): the engines attach a
        # ChannelTelemetry; erases and retirements report themselves so
        # the per-block wear context stays current.  None disables.
        self.channel_telemetry = None
        n_logical = config.logical_pages
        n_physical = config.physical_pages
        self._l2p = np.full(n_logical, _FREE, dtype=np.int64)
        self._p2l = np.full(n_physical, _FREE, dtype=np.int64)
        self._page_valid = np.zeros(n_physical, dtype=bool)
        self._block_mode = np.full(config.n_blocks, _FREE, dtype=np.int8)
        self._block_write_ptr = np.zeros(config.n_blocks, dtype=np.int32)
        self._block_valid = np.zeros(config.n_blocks, dtype=np.int32)
        self._block_erase = np.zeros(config.n_blocks, dtype=np.int32)
        self._free_blocks: deque[int] = deque(range(config.n_blocks))
        # Active write frontiers: one per (mode, slot).  The "host" slot
        # serves host writes and GC relocation; the "cold" slot parks
        # wear-leveling relocations in worn blocks so cold data stops
        # circulating through the hot rotation.
        self._active: dict[tuple[CellMode, str], int | None] = {
            (mode, slot): None for mode in CellMode for slot in ("host", "cold")
        }
        self._in_gc = False
        self.wear_leveler = wear_leveler
        # Age bookkeeping (hours): write time during the sim, or the
        # sampled initial age for prefilled pages.
        self._write_time_hours = np.full(n_logical, np.nan)
        self._initial_age_hours = np.zeros(n_logical)
        ages = np.broadcast_to(
            np.asarray(initial_age_hours, dtype=float), (prefill_pages,)
        )
        if np.any(ages < 0):
            raise ConfigurationError("initial ages must be non-negative")
        self._initial_age_hours[:prefill_pages] = ages
        # Fault handling: map out factory-bad blocks before any page is
        # placed, so prefill and the free pool never see them.
        if fault_injector is not None and not fault_injector.config.enabled:
            fault_injector = None
        self.fault_injector = fault_injector
        self.recovery = recovery
        self.read_only = False
        self.bad_block_table: BadBlockTable | None = None
        if fault_injector is not None:
            manufacture_bad = fault_injector.sample_manufacture_bad(config.n_blocks)
            self.bad_block_table = BadBlockTable(
                n_blocks=config.n_blocks,
                spare_blocks=fault_injector.spare_blocks(config.n_blocks),
                manufacture_bad=manufacture_bad,
            )
            for block in manufacture_bad:
                self._block_mode[block] = _BAD
                self._free_blocks.remove(block)
        self._prefill(prefill_pages, reduced_prefix_pages)
        if fault_injector is not None:
            if self.free_block_count() <= config.gc_free_block_threshold:
                raise ConfigurationError(
                    f"{len(self.bad_block_table.manufacture_bad)} manufacture-bad "
                    f"blocks leave only {self.free_block_count()} free blocks "
                    f"after prefill (GC needs > {config.gc_free_block_threshold}) "
                    "— lower the bad-block rate or add over-provisioning"
                )
            self.stats.manufacture_bad_blocks = len(
                self.bad_block_table.manufacture_bad
            )

    # --- capacity views ---------------------------------------------------------

    def free_block_count(self) -> int:
        """Blocks currently in the free pool."""
        return len(self._free_blocks)

    def block_usable_pages(self, block: int) -> int:
        """Pages a block can hold in its current mode (full size if
        free, zero if retired)."""
        if not 0 <= block < self.config.n_blocks:
            raise ConfigurationError(f"block {block} outside [0, {self.config.n_blocks})")
        if self._block_mode[block] == _BAD:
            return 0
        if self._block_mode[block] == _FREE:
            return self.config.pages_per_block
        return self._usable_pages_by_mode(self._mode_of_block(block))

    def mode_of(self, lpn: int) -> CellMode | None:
        """Cell mode the logical page is currently stored in."""
        self._check_lpn(lpn)
        ppn = self._l2p[lpn]
        if ppn == _FREE:
            return None
        return self._mode_of_block(int(ppn) // self.config.pages_per_block)

    def reduced_logical_pages(self) -> int:
        """Logical pages currently stored in reduced-mode blocks."""
        return self.pages_in_mode(CellMode.REDUCED)

    def pages_in_mode(self, mode: CellMode) -> int:
        """Valid logical pages currently stored in ``mode`` blocks."""
        code = _MODE_TO_INT[mode]
        count = 0
        for block in range(self.config.n_blocks):
            if self._block_mode[block] == code:
                count += int(self._block_valid[block])
        return count

    def physical_page_supply(self) -> int:
        """Usable pages across all blocks given their current modes."""
        supply = 0
        for block in range(self.config.n_blocks):
            mode = self._block_mode[block]
            if mode == _BAD:
                continue
            if mode == _FREE:
                supply += self.config.pages_per_block
            else:
                supply += self._usable_pages_by_mode(_INT_TO_MODE[int(mode)])
        return supply

    def channel_of(self, lpn: int, n_channels: int) -> int:
        """Channel a read/program of this logical page lands on.

        Blocks stripe round-robin across channels (a block lives on one
        die, a die hangs off one channel), so the routing key is the
        page's *physical* block — two logical neighbours written at
        different times can sit on different channels, and a page's
        channel changes when GC or migration relocates it.  Unmapped
        pages have no physical home yet; they route by LPN so the
        dispatcher still spreads them.
        """
        self._check_lpn(lpn)
        if n_channels < 1:
            raise ConfigurationError(f"need at least one channel, got {n_channels}")
        ppn = self._l2p[lpn]
        if ppn == _FREE:
            return lpn % n_channels
        return (int(ppn) // self.config.pages_per_block) % n_channels

    def max_pe_cycles(self) -> float:
        """Highest per-block P/E count (initial wear + simulated erases)."""
        return self.config.initial_pe_cycles + float(self._block_erase.max())

    def publish_metrics(self, registry) -> None:
        """Publish counters and wear/capacity gauges into ``registry``
        (a :class:`repro.obs.metrics.MetricsRegistry`)."""
        self.stats.publish(registry)
        registry.gauge("ftl.wear.max_pe_cycles").set(self.max_pe_cycles())
        registry.gauge("ftl.capacity.reduced_logical_pages").set(
            self.reduced_logical_pages()
        )
        if self.fault_injector is not None:
            registry.gauge("ftl.bbt.spare_remaining").set(
                self.bad_block_table.spare_remaining
            )
            registry.gauge("ftl.degraded.read_only").set(
                1.0 if self.read_only else 0.0
            )

    # --- windowed telemetry -----------------------------------------------------

    def window_tick(self, now_us: float) -> None:
        """Advance the windowed-telemetry virtual clock.

        Host-path entry points (reads, writes, migrations, refreshes)
        tick it with their request time; internal events that carry no
        timestamp of their own — GC runs, scrubs, block retirements,
        entering degraded mode — stamp themselves at the last ticked
        time.  A no-op without an attached recorder.
        """
        if self.window_recorder is not None and now_us > self._window_now_us:
            self._window_now_us = now_us

    def _window_add(self, series: str, amount: float = 1.0) -> None:
        if self.window_recorder is not None:
            self.window_recorder.add(series, self._window_now_us, amount)

    # --- host operations ------------------------------------------------------------

    def read_info(self, lpn: int, now_us: float) -> PageReadInfo:
        """Metadata for a host read (mode, data age, wear).

        Reading an unmapped page is legal (hosts read unwritten LBAs);
        it reports normal mode and zero age.
        """
        self._check_lpn(lpn)
        self.window_tick(now_us)
        self.stats.host_read_pages += 1
        ppn = self._l2p[lpn]
        if ppn == _FREE:
            return PageReadInfo(lpn, CellMode.NORMAL, 0.0, self._current_pe(None))
        block = int(ppn) // self.config.pages_per_block
        mode = self._mode_of_block(block)
        age = self._age_hours(lpn, now_us)
        self.stats.flash_read_pages += 1
        return PageReadInfo(lpn, mode, age, self._current_pe(block), block)

    def host_write(self, lpn: int, mode: CellMode, now_us: float) -> tuple[float, float]:
        """Write a logical page in the given mode.

        Returns ``(foreground_us, background_us)``: the program itself
        is foreground work, garbage collection it triggered is
        background work the controller overlaps with idle time.

        In read-only degraded mode (spare pool exhausted) the write is
        rejected — counted, zero cost — instead of crashing the run.
        """
        self._check_lpn(lpn)
        self.window_tick(now_us)
        if self.recovery is not None:
            self.recovery.begin_op(now_us)
        if self.read_only:
            self.stats.rejected_writes += 1
            return 0.0, 0.0
        self.stats.host_write_pages += 1
        return self._write_page(lpn, mode, now_us, kind="host")

    def trim(self, lpn: int) -> bool:
        """Host TRIM/discard: drop a logical page's mapping.

        The freed physical page becomes garbage for GC to reclaim.
        Returns True if the page was mapped.
        """
        self._check_lpn(lpn)
        ppn = self._l2p[lpn]
        if ppn == _FREE:
            return False
        self._invalidate(int(ppn))
        self._l2p[lpn] = _FREE
        self._write_time_hours[lpn] = np.nan
        self._initial_age_hours[lpn] = 0.0
        self.stats.trimmed_pages += 1
        if self.recovery is not None:
            self.recovery.record_trim(lpn)
        return True

    def migrate(self, lpn: int, target_mode: CellMode, now_us: float) -> tuple[float, float]:
        """Move a page between modes (AccessEval promotion/demotion).

        Returns ``(foreground_us, background_us)``: one flash read plus
        one program in the foreground, any triggered GC in the
        background.  The data age is preserved — migration rewrites the
        same data.
        """
        self._check_lpn(lpn)
        self.window_tick(now_us)
        if self.recovery is not None:
            self.recovery.begin_op(now_us)
        if self._l2p[lpn] == _FREE:
            raise FtlError(f"cannot migrate unmapped page {lpn}")
        if self.read_only:
            return 0.0, 0.0
        current_mode = self.mode_of(lpn)
        if current_mode == target_mode:
            return 0.0, 0.0
        age_before = self._age_hours(lpn, now_us)
        foreground = self.config.timing.read_us
        self.stats.flash_read_pages += 1
        program, background = self._write_page(lpn, target_mode, now_us, kind="migration")
        foreground += program
        # Restore the age: migrated data is old data in a new location.
        self._write_time_hours[lpn] = us_to_hours(now_us) - age_before
        if self.recovery is not None:
            self.recovery.patch_write_time(lpn, float(self._write_time_hours[lpn]))
        return foreground, background

    def refresh(self, lpn: int, now_us: float) -> float:
        """Rewrite a page in its current mode to reset its data age.

        The read-scrub primitive: one flash read plus one program (same
        mechanism as :meth:`migrate`, without the mode change), after
        which the page's retention clock restarts at ``now_us``.
        Returns the flash work in microseconds; zero for unmapped pages
        and in read-only mode (skipped scrubs are counted).
        """
        self._check_lpn(lpn)
        self.window_tick(now_us)
        if self.recovery is not None:
            self.recovery.begin_op(now_us)
        if self._l2p[lpn] == _FREE:
            return 0.0
        if self.read_only:
            self.stats.scrub_skipped_pages += 1
            return 0.0
        mode = self.mode_of(lpn)
        service = self.config.timing.read_us
        self.stats.flash_read_pages += 1
        program, gc = self._write_page(lpn, mode, now_us, kind="scrub")
        self.stats.scrub_refreshed_pages += 1
        self._window_add("ftl.scrub.refreshed_pages")
        return service + program + gc

    def scrub_if_needed(self, lpn: int, required_levels: int, now_us: float) -> float:
        """Refresh the page if its BER crossed the scrub trigger.

        Called on the read path with the sensing-level requirement the
        tracking policy just computed; refreshes (background work) when
        the requirement reaches the fault config's trigger and the data
        is old enough for a rewrite to actually lower its BER.  Returns
        the background flash work, zero when no scrub ran.
        """
        injector = self.fault_injector
        if injector is None or not injector.config.scrub_enabled:
            return 0.0
        if required_levels < injector.config.scrub_trigger_levels:
            return 0.0
        if self._age_hours(lpn, now_us) < injector.config.scrub_min_age_hours:
            return 0.0
        return self.refresh(lpn, now_us)

    # --- internals ------------------------------------------------------------------

    def _prefill(self, prefill_pages: int, reduced_prefix_pages: int) -> None:
        for lpn in range(prefill_pages):
            mode = CellMode.REDUCED if lpn < reduced_prefix_pages else CellMode.NORMAL
            block, offset = self._allocate_page(mode)
            ppn = block * self.config.pages_per_block + offset
            self._l2p[lpn] = ppn
            self._p2l[ppn] = lpn
            self._page_valid[ppn] = True
            self._block_valid[block] += 1
            if self.recovery is not None:
                self.recovery.record_prefill(
                    lpn,
                    ppn,
                    _MODE_TO_INT[mode],
                    float(self._initial_age_hours[lpn]),
                )
        # Prefill is history, not simulated work: reset the counters the
        # allocation path may have touched.
        self.stats = SsdStats()
        if self.recovery is not None:
            # Mount checkpoint: without it a crash before the first
            # flash program/erase would leave replay_at with no base
            # and force a full-medium scan on remount.
            self.recovery.take_checkpoint(0.0)

    def _write_page(
        self, lpn: int, mode: CellMode, now_us: float, kind: str
    ) -> tuple[float, float]:
        service = 0.0
        # Allocate before invalidating: an out-of-space failure must not
        # lose the page's current copy.
        block, offset, gc_service = self._allocate_page_with_gc(mode)
        injector = self.fault_injector
        if injector is not None:
            device_age = us_to_hours(now_us)
            while injector.program_fails(self._current_pe(block), device_age):
                # Program-status fail: the attempt is paid for, the
                # failing block retired (rewrite-and-retire), and the
                # write moves to a fresh block.
                self.stats.program_fail_events += 1
                service += self.config.timing.program_us
                service += self._retire_block(block)
                if self.read_only:
                    # No spare remained: the drive just degraded.  The
                    # write is dropped; the old copy stays valid.
                    self.stats.rejected_writes += 1
                    return service, gc_service
                block, offset, gc_extra = self._allocate_page_with_gc(mode)
                gc_service += gc_extra
        # Re-read the old mapping after allocation — GC may have
        # relocated the old copy while making room.
        old_ppn = self._l2p[lpn]
        if old_ppn != _FREE:
            self._invalidate(int(old_ppn))
        ppn = block * self.config.pages_per_block + offset
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        self._page_valid[ppn] = True
        self._block_valid[block] += 1
        self._write_time_hours[lpn] = us_to_hours(now_us)
        if self.recovery is not None:
            self.recovery.record_program(
                lpn,
                ppn,
                _MODE_TO_INT[mode],
                kind,
                write_time_hours=us_to_hours(now_us),
                initial_age_hours=float(self._initial_age_hours[lpn]),
            )
        service += self.config.timing.program_us
        if kind == "host":
            self.stats.flash_program_pages += 1
        elif kind == "migration":
            self.stats.migration_program_pages += 1
        elif kind == "scrub":
            self.stats.scrub_program_pages += 1
        else:
            self.stats.gc_program_pages += 1
        return service, gc_service

    def _invalidate(self, ppn: int) -> None:
        if not self._page_valid[ppn]:
            raise FtlError(f"double invalidation of physical page {ppn}")
        self._page_valid[ppn] = False
        self._p2l[ppn] = _FREE
        block = ppn // self.config.pages_per_block
        self._block_valid[block] -= 1
        if self._block_valid[block] < 0:
            raise FtlError(f"negative valid count in block {block}")

    def _allocate_page_with_gc(self, mode: CellMode) -> tuple[int, int, float]:
        gc_service = 0.0
        if (
            not self._in_gc
            and self.free_block_count() <= self.config.gc_free_block_threshold
        ):
            gc_service = self._garbage_collect()
        block, offset = self._allocate_page(mode)
        return block, offset, gc_service

    def _allocate_page(self, mode: CellMode, slot: str = "host") -> tuple[int, int]:
        active = self._active[(mode, slot)]
        usable = self._usable_pages_by_mode(mode)
        if active is None or self._block_write_ptr[active] >= usable:
            active = self._take_free_block(mode, slot)
        offset = int(self._block_write_ptr[active])
        self._block_write_ptr[active] += 1
        return active, offset

    def _take_free_block(self, mode: CellMode, slot: str = "host") -> int:
        if not self._free_blocks:
            raise OutOfSpaceError(
                f"free-block pool exhausted allocating a {mode.name.lower()}-mode "
                f"block for the {slot!r} frontier — over-provisioning consumed, "
                "too much space converted to reduced mode or lost to bad blocks "
                f"({self._space_report()})"
            )
        # Dynamic wear leveling at allocation time: host data goes to the
        # least-worn free block, parked cold data to the most-worn one.
        if slot == "cold":
            block = max(self._free_blocks, key=lambda b: self._block_erase[b])
        else:
            block = min(self._free_blocks, key=lambda b: self._block_erase[b])
        self._free_blocks.remove(block)
        self._block_mode[block] = _MODE_TO_INT[mode]
        self._block_write_ptr[block] = 0
        self._active[(mode, slot)] = block
        return block

    def _garbage_collect(self) -> float:
        """Greedy GC: reclaim blocks until the free pool recovers.

        Returns the flash work spent (reads + programs + erases).
        """
        service = 0.0
        self._in_gc = True
        try:
            guard = 0
            while self.free_block_count() <= self.config.gc_free_block_threshold:
                victim = self._pick_victim()
                if victim is None:
                    raise OutOfSpaceError(
                        "garbage collection found no reclaimable block — "
                        f"GC victim pool exhausted ({self._space_report()})"
                    )
                service += self._reclaim(victim)
                guard += 1
                if guard > self.config.n_blocks:
                    raise FtlError("GC loop failed to make progress")
            self.stats.gc_runs += 1
            self._window_add("ftl.gc.runs")
            service += self._maybe_wear_level()
        finally:
            self._in_gc = False
        return service

    def _maybe_wear_level(self) -> float:
        """Rotate one cold block if the wear spread demands it."""
        leveler = self.wear_leveler
        if leveler is None or not leveler.should_check(self.stats.gc_runs):
            return 0.0
        excluded = {b for b in self._active.values() if b is not None}
        excluded.update(self._free_blocks)
        excluded.update(int(b) for b in np.flatnonzero(self._block_mode == _BAD))
        usable = np.array(
            [self.block_usable_pages(b) for b in range(self.config.n_blocks)]
        )
        cold = leveler.pick_cold_block(
            self._block_erase, self._block_valid, usable, excluded
        )
        if cold is None:
            return 0.0
        moved = int(self._block_valid[cold])
        service = self._reclaim(cold, slot="cold")
        self.stats.wear_level_moves += moved
        return service

    def _pick_victim(self) -> int | None:
        """The non-active, non-free block with the fewest valid pages
        (ties broken toward fully-written blocks to avoid churning the
        write frontier)."""
        active_blocks = {b for b in self._active.values() if b is not None}
        best = None
        best_key = None
        for block in range(self.config.n_blocks):
            if self._block_mode[block] in (_FREE, _BAD) or block in active_blocks:
                continue
            mode = self._mode_of_block(block)
            usable = self._usable_pages_by_mode(mode)
            if self._block_write_ptr[block] < usable:
                continue  # still open for writes
            valid = int(self._block_valid[block])
            if valid >= usable:
                continue  # nothing to reclaim
            key = valid
            if best_key is None or key < best_key:
                best, best_key = block, key
        return best

    def _reclaim(self, victim: int, slot: str = "host") -> float:
        service = self._relocate_valid_pages(victim, slot)
        injector = self.fault_injector
        if injector is not None and injector.erase_fails(self._current_pe(victim)):
            # Erase-status fail: the attempt is paid for and the block
            # retired instead of rejoining the free pool (its wear
            # count is not advanced — the erase never completed).
            self.stats.erase_fail_events += 1
            service += self.config.timing.erase_us
            self._block_write_ptr[victim] = 0
            self._block_mode[victim] = _BAD
            if self.recovery is not None:
                self.recovery.record_retire(victim)
            bbt = self.bad_block_table
            if bbt.exhausted:
                self.stats.retirements_skipped += 1
                self._enter_read_only()
            else:
                bbt.retire(victim)
                self.stats.blocks_retired += 1
                self._window_add("ftl.bbt.retired")
                if self.channel_telemetry is not None:
                    self.channel_telemetry.on_retire(victim, "erase_fail")
            return service
        self._block_mode[victim] = _FREE
        self._block_write_ptr[victim] = 0
        self._free_blocks.append(victim)
        self._block_erase[victim] += 1
        self.stats.erase_blocks += 1
        if self.channel_telemetry is not None:
            self.channel_telemetry.on_erase(victim, self._current_pe(victim))
        service += self.config.timing.erase_us
        if self.recovery is not None:
            self.recovery.record_erase(victim)
        return service

    def _relocate_valid_pages(self, victim: int, slot: str = "host") -> float:
        """Copy every valid page off ``victim``; returns the flash work."""
        service = 0.0
        mode = self._mode_of_block(victim)
        ppb = self.config.pages_per_block
        base = victim * ppb
        for offset in range(int(self._block_write_ptr[victim])):
            ppn = base + offset
            if not self._page_valid[ppn]:
                continue
            lpn = int(self._p2l[ppn])
            age_hours = self._write_time_hours[lpn]
            service += self.config.timing.read_us
            self.stats.flash_read_pages += 1
            self._invalidate(ppn)
            block, offset_new = self._allocate_page(mode, slot)
            new_ppn = block * ppb + offset_new
            self._l2p[lpn] = new_ppn
            self._p2l[new_ppn] = lpn
            self._page_valid[new_ppn] = True
            self._block_valid[block] += 1
            # Relocation copies old data: preserve its age bookkeeping.
            self._write_time_hours[lpn] = age_hours
            if self.recovery is not None:
                self.recovery.record_program(
                    lpn,
                    new_ppn,
                    _MODE_TO_INT[mode],
                    "gc",
                    write_time_hours=float(age_hours),
                    initial_age_hours=float(self._initial_age_hours[lpn]),
                )
            service += self.config.timing.program_us
            self.stats.gc_program_pages += 1
        if self._block_valid[victim] != 0:
            raise FtlError(f"victim block {victim} still has valid pages")
        return service

    def _retire_block(self, victim: int) -> float:
        """Retire a block that failed a program status check.

        Valid pages are relocated, the block is marked bad and a spare
        consumed; with no spare remaining the drive enters read-only
        degraded mode instead (the block stays in service — nothing
        better exists to move its data to).  Returns the relocation
        flash work in microseconds.
        """
        bbt = self.bad_block_table
        if bbt.exhausted:
            self.stats.retirements_skipped += 1
            self._enter_read_only()
            return 0.0
        # Close any write frontier on the victim first, so relocation
        # cannot allocate pages back into the block being retired.
        for key, active in self._active.items():
            if active == victim:
                self._active[key] = None
        service = self._relocate_valid_pages(victim)
        self._block_mode[victim] = _BAD
        self._block_write_ptr[victim] = 0
        if self.recovery is not None:
            self.recovery.record_retire(victim)
        bbt.retire(victim)
        self.stats.blocks_retired += 1
        self._window_add("ftl.bbt.retired")
        if self.channel_telemetry is not None:
            self.channel_telemetry.on_retire(victim, "program_fail")
        return service

    def _enter_read_only(self) -> None:
        """Degrade to read-only: writes, migrations and scrubs stop."""
        self.read_only = True
        if self.window_recorder is not None:
            self.window_recorder.sample(
                "ftl.degraded.read_only", self._window_now_us, 1.0
            )

    # --- helpers ------------------------------------------------------------------------

    def _space_report(self) -> str:
        """Pool accounting embedded in OutOfSpaceError messages."""
        counts = {mode: 0 for mode in CellMode}
        for block in range(self.config.n_blocks):
            code = self._block_mode[block]
            if code not in (_FREE, _BAD):
                counts[_INT_TO_MODE[int(code)]] += 1
        parts = [
            f"free={self.free_block_count()}",
            "in-use "
            + " ".join(f"{mode.name.lower()}={n}" for mode, n in counts.items()),
            f"gc_threshold={self.config.gc_free_block_threshold}",
        ]
        bbt = self.bad_block_table
        if bbt is not None:
            parts.append(
                f"bad-blocks manufacture={len(bbt.manufacture_bad)} "
                f"grown={len(bbt.grown)} spares_remaining={bbt.spare_remaining}"
            )
        if self.read_only:
            parts.append("read-only degraded mode")
        return "; ".join(parts)

    def _usable_pages_by_mode(self, mode: CellMode) -> int:
        if mode is CellMode.NORMAL:
            return self.config.pages_per_block
        if mode is CellMode.REDUCED:
            return self.config.reduced_pages_per_block
        return self.config.slc_pages_per_block

    def _mode_of_block(self, block: int) -> CellMode:
        mode = self._block_mode[block]
        if mode == _FREE:
            raise FtlError(f"block {block} is free, it has no mode")
        if mode == _BAD:
            raise FtlError(f"block {block} is retired, it has no mode")
        return _INT_TO_MODE[int(mode)]

    def _age_hours(self, lpn: int, now_us: float) -> float:
        write_time = self._write_time_hours[lpn]
        if np.isnan(write_time):
            return float(self._initial_age_hours[lpn])
        return max(us_to_hours(now_us) - float(write_time), 0.0)

    def _current_pe(self, block: int | None) -> float:
        if block is None:
            return self.config.initial_pe_cycles
        return self.config.initial_pe_cycles + float(self._block_erase[block])

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.config.logical_pages:
            raise ConfigurationError(
                f"LPN {lpn} outside [0, {self.config.logical_pages})"
            )
