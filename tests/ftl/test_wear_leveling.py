"""Tests for static wear leveling."""

import numpy as np
import pytest

from repro.core.level_adjust import CellMode
from repro.ftl.config import SsdConfig
from repro.ftl.ssd import Ssd
from repro.ftl.wear_leveling import WearLeveler, erase_spread
from repro.errors import ConfigurationError


class TestPolicyUnit:
    def test_should_check_interval(self):
        leveler = WearLeveler(check_interval=3)
        assert leveler.should_check(3)
        assert leveler.should_check(6)
        assert not leveler.should_check(4)

    def test_pick_cold_block(self):
        leveler = WearLeveler(spread_threshold=5)
        erase = np.array([10, 1, 9, 0])
        valid = np.array([4, 4, 4, 2])
        usable = np.array([4, 4, 4, 4])
        # block 3 is cold but not fully valid; block 1 qualifies
        assert leveler.pick_cold_block(erase, valid, usable, set()) == 1

    def test_no_candidate_below_threshold(self):
        leveler = WearLeveler(spread_threshold=5)
        erase = np.array([3, 1, 2])
        valid = usable = np.array([4, 4, 4])
        assert leveler.pick_cold_block(erase, valid, usable, set()) is None

    def test_excluded_blocks_skipped(self):
        leveler = WearLeveler(spread_threshold=2)
        erase = np.array([5, 0])
        valid = usable = np.array([4, 4])
        assert leveler.pick_cold_block(erase, valid, usable, {1}) is None

    def test_erase_spread(self):
        assert erase_spread(np.array([3, 9, 5])) == 6
        with pytest.raises(ConfigurationError):
            erase_spread(np.array([]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WearLeveler(spread_threshold=0)
        with pytest.raises(ConfigurationError):
            WearLeveler(check_interval=0)


def _hammer(ssd, footprint, n_writes, seed=0):
    rng = np.random.default_rng(seed)
    # skewed writes: a hot half of the footprint gets most of the traffic
    for _ in range(n_writes):
        if rng.random() < 0.9:
            lpn = int(rng.integers(footprint // 2))
        else:
            lpn = int(rng.integers(footprint))
        ssd.host_write(lpn, CellMode.NORMAL, now_us=0.0)


class TestIntegration:
    def make_ssd(self, leveler):
        config = SsdConfig(
            n_blocks=64, pages_per_block=16, gc_free_block_threshold=2
        )
        prefill = int(config.logical_pages * 0.9)
        return Ssd(config, prefill_pages=prefill, wear_leveler=leveler), prefill

    def test_leveling_overhead_bounded_on_mixed_workload(self):
        """On a workload whose 'cold' data still sees occasional writes,
        static wear leveling cannot help much — but its relocation
        overhead must stay bounded (no churn storms)."""
        plain, footprint = self.make_ssd(None)
        leveled, _ = self.make_ssd(WearLeveler(spread_threshold=4, check_interval=2))
        _hammer(plain, footprint, 8000)
        _hammer(leveled, footprint, 8000)
        assert leveled.stats.wear_level_moves > 0
        assert (
            leveled.stats.write_amplification()
            < plain.stats.write_amplification() * 1.5
        )

    def test_leveling_parks_cold_data_in_worn_blocks(self):
        """With a truly static cold region, greedy-only concentrates all
        wear on the hot blocks; the leveler spreads it."""
        config = SsdConfig(
            n_blocks=64, pages_per_block=16, gc_free_block_threshold=2
        )
        prefill = int(config.logical_pages * 0.95)
        rng = np.random.default_rng(5)

        def hammer(ssd):
            hot = prefill // 4
            for _ in range(8000):
                ssd.host_write(int(rng.integers(hot)), CellMode.NORMAL, now_us=0.0)

        plain = Ssd(config, prefill_pages=prefill)
        hammer(plain)
        leveled = Ssd(
            config,
            prefill_pages=prefill,
            wear_leveler=WearLeveler(spread_threshold=6, check_interval=6),
        )
        hammer(leveled)
        assert leveled._block_erase.max() < plain._block_erase.max()

    def test_leveling_preserves_mapping(self):
        leveled, footprint = self.make_ssd(WearLeveler(spread_threshold=4, check_interval=2))
        _hammer(leveled, footprint, 4000, seed=3)
        mapped = leveled._l2p >= 0
        ppns = leveled._l2p[mapped]
        assert (leveled._p2l[ppns] == np.flatnonzero(mapped)).all()
        assert leveled._page_valid[ppns].all()

    def test_disabled_by_default(self):
        plain, footprint = self.make_ssd(None)
        _hammer(plain, footprint, 3000)
        assert plain.stats.wear_level_moves == 0
